package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// This file is the deterministic chaos matrix of the fault-injection issue:
// every scenario runs the real manager over a real job directory with a
// seeded faultfs schedule (or a hand-corrupted checkpoint) and asserts the
// hardened invariant — an injected fault ends in a correct resume, a clean
// generation fallback, or an explicit terminal state. Never a hang (every
// wait has a deadline), never a lost job, never daemon death (startManager's
// stop asserts the worker pool exits and leaks no goroutine).

// noSleep keeps retry backoff out of test wall-clock time.
func noSleep(time.Duration) {}

func chaosConfig(dir string, fsys faultfs.FS) Config {
	return Config{
		Dir:             dir,
		FS:              fsys,
		Workers:         1,
		CheckpointEvery: 1,
		RetrySleep:      noSleep,
	}
}

// eventMessages flattens a job's event log for content assertions.
func eventMessages(t *testing.T, m *Manager, id string) []Event {
	t.Helper()
	job, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s disappeared", id)
	}
	replay, _, unsub := job.Subscribe(0)
	unsub()
	return replay
}

func hasMessage(events []Event, substr string) bool {
	for _, ev := range events {
		if strings.Contains(ev.Message, substr) {
			return true
		}
	}
	return false
}

// newestGeneration returns the path of the highest-numbered checkpoint file
// in a job directory (the zero-padded names sort lexically).
func newestGeneration(t *testing.T, dir, id string) string {
	t.Helper()
	gens, err := filepath.Glob(filepath.Join(dir, id, "checkpoint.*"))
	if err != nil || len(gens) == 0 {
		t.Fatalf("no checkpoint generations in %s/%s (%v)", dir, id, err)
	}
	sort.Strings(gens)
	return gens[len(gens)-1]
}

// corruptFile flips a run of bytes in the middle of a file in place.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if len(data) < 16 {
		t.Fatalf("%s too short to corrupt meaningfully (%d bytes)", path, len(data))
	}
	for i := len(data) / 2; i < len(data)/2+8; i++ {
		data[i] ^= 0xA5
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// assertNoTempResidue fails if any interrupted-write temp file is visible in
// the job directory (the atomic-write discipline must clean up or the next
// startup sweep must).
func assertNoTempResidue(t *testing.T, dir, id string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, id))
	if err != nil {
		t.Fatalf("reading job dir: %v", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") || strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("temp residue %s visible in job dir", e.Name())
		}
	}
}

// TestChaosInjectedFaultsStillConverge is the single-process half of the
// matrix: each scenario arms one fault schedule and requires the job to end
// in the expected terminal state with the bitwise-reference result where it
// completes. The fault classes cover torn checkpoint writes (non-transient:
// the checkpoint is sacrificed, the run continues), transient errnos on sync
// and rename (retried to success, counted in store_retries), and a worker
// panic (isolated to the job; the daemon takes the next submission).
func TestChaosInjectedFaultsStillConverge(t *testing.T) {
	circuit := testCircuit(t)
	spec := testSpec()
	want, wantAAG := referenceRun(t, spec, circuit)

	scenarios := []struct {
		name        string
		schedule    []faultfs.Fault
		wantState   State
		wantRetries bool
	}{
		{
			name: "torn checkpoint write is sacrificed",
			schedule: []faultfs.Fault{
				{Op: faultfs.OpWrite, PathSubstr: ".ckpt-", N: 2, TornBytes: 10},
			},
			wantState: StateDone,
		},
		{
			name: "ENOSPC on checkpoint sync is retried",
			schedule: []faultfs.Fault{
				{Op: faultfs.OpSync, PathSubstr: ".ckpt-", N: 1, Err: syscall.ENOSPC},
			},
			wantState:   StateDone,
			wantRetries: true,
		},
		{
			name: "EBUSY on state rename is retried",
			schedule: []faultfs.Fault{
				{Op: faultfs.OpRename, PathSubstr: "state.json", N: 2, Err: syscall.EBUSY},
			},
			wantState:   StateDone,
			wantRetries: true,
		},
		{
			name: "EACCES on checkpoint temp fails that checkpoint only",
			schedule: []faultfs.Fault{
				{Op: faultfs.OpCreateTemp, PathSubstr: ".ckpt-", N: 1, Err: syscall.EACCES},
			},
			wantState: StateDone,
		},
		{
			name: "panic while loading the circuit is isolated",
			schedule: []faultfs.Fault{
				{Op: faultfs.OpReadFile, PathSubstr: "circuit", N: 1, Panic: true},
			},
			wantState: StateFailed,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS{}, sc.schedule...)
			m, stop := startManager(t, chaosConfig(dir, inj))
			defer stop()

			st, err := m.Submit(spec, circuit)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			final := waitTerminal(t, m, st.ID)
			if final.State != sc.wantState {
				t.Fatalf("job ended %s (error %q), want %s", final.State, final.Error, sc.wantState)
			}
			if len(inj.Fired()) == 0 {
				t.Fatal("scenario fault never fired; schedule does not reach the intended path")
			}
			if sc.wantRetries && m.met.retries.Value() == 0 {
				t.Fatal("transient fault did not bump store_retries")
			}
			switch sc.wantState {
			case StateDone:
				if final.FinalError != want.FinalError || final.Iterations != want.Iterations {
					t.Fatalf("faulted run diverged: %d iterations / error %v, reference %d / %v",
						final.Iterations, final.FinalError, want.Iterations, want.FinalError)
				}
				if !bytes.Equal(graphAAG(t, m, st.ID), wantAAG) {
					t.Fatal("faulted run result differs bitwise from reference")
				}
			case StateFailed:
				if !strings.Contains(final.Error, "worker panic") {
					t.Fatalf("failed job error %q does not identify the recovered panic", final.Error)
				}
				events := eventMessages(t, m, st.ID)
				captured := false
				for _, ev := range events {
					if strings.Contains(ev.Error, "goroutine") {
						captured = true
					}
				}
				if !captured {
					t.Fatal("no event carries the captured panic stack")
				}
				if m.met.panics.Value() == 0 {
					t.Fatal("worker panic not counted")
				}
				// The daemon survived: the next submission must complete.
				st2, err := m.Submit(spec, circuit)
				if err != nil {
					t.Fatalf("Submit after panic: %v", err)
				}
				next := waitState(t, m, st2.ID, StateDone)
				if !bytes.Equal(graphAAG(t, m, st2.ID), wantAAG) {
					t.Fatal("post-panic job result differs from reference")
				}
				_ = next
			}
		})
	}
}

// waitTerminal polls until the job reaches any terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := job.Status(false)
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosCrashPointThenResume kills persistence mid-checkpoint-rename (the
// crash point makes every later filesystem operation fail, as a real process
// death at that instant would) and then restarts over the same directory. The
// resumed run must restore the last durable generation and finish bitwise
// identical to the reference.
func TestChaosCrashPointThenResume(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	spec := testSpec()
	want, wantAAG := referenceRun(t, spec, circuit)

	inj := faultfs.NewInjector(faultfs.OS{},
		faultfs.Fault{Op: faultfs.OpRename, PathSubstr: "checkpoint.", N: 2, Crash: true},
	)
	m1, stop1 := startManager(t, chaosConfig(dir, inj))
	st, err := m1.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !inj.Crashed() {
		if time.Now().After(deadline) {
			t.Fatal("crash point never fired")
		}
		time.Sleep(time.Millisecond)
	}
	stop1() // the dead process's goroutines must still wind down cleanly

	// Durable state: generation 1 on disk, state.json from before the crash,
	// a stranded .ckpt- temp (its cleanup failed too — the process was dead).
	if _, err := os.Stat(filepath.Join(dir, st.ID, "checkpoint.000001")); err != nil {
		t.Fatalf("first generation not durable across crash: %v", err)
	}

	m2, stop2 := startManager(t, chaosConfig(dir, faultfs.OS{}))
	defer stop2()
	assertNoTempResidue(t, dir, st.ID) // startup sweep collected the stranded temp
	final := waitState(t, m2, st.ID, StateDone)
	if final.FinalError != want.FinalError || final.Iterations != want.Iterations {
		t.Fatalf("post-crash run diverged: %d iterations / error %v, reference %d / %v",
			final.Iterations, final.FinalError, want.Iterations, want.FinalError)
	}
	if !bytes.Equal(graphAAG(t, m2, st.ID), wantAAG) {
		t.Fatal("post-crash result differs bitwise from reference")
	}
	if m2.met.resumes.Value() == 0 {
		t.Fatal("post-crash run restarted from scratch: expected a checkpoint restore")
	}
}

// TestChaosCorruptGenerationFallsBack interrupts a run with several
// checkpoint generations on disk, corrupts the newest one, and restarts: the
// manager must fall back to the next generation (counting it and noting it in
// the event log) and still produce the bitwise-reference result. A second
// phase corrupts every generation: the job then restarts from the original
// circuit — same guarantee, one more fallback.
func TestChaosCorruptGenerationFallsBack(t *testing.T) {
	for _, corruptAll := range []bool{false, true} {
		name := "newest generation"
		if corruptAll {
			name = "all generations"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			circuit := testCircuit(t)
			spec := testSpec()
			want, wantAAG := referenceRun(t, spec, circuit)

			m1, stop1 := startManager(t, chaosConfig(dir, faultfs.OS{}))
			st, err := m1.Submit(spec, circuit)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				job, _ := m1.Get(st.ID)
				s := job.Status(false)
				if s.Iterations >= 3 || s.State.terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("job never accumulated iterations")
				}
				time.Sleep(time.Millisecond)
			}
			stop1()
			job, _ := m1.Get(st.ID)
			if job.State().terminal() {
				t.Skip("job outran the interrupt on this machine; nothing to corrupt")
			}

			if corruptAll {
				gens, _ := filepath.Glob(filepath.Join(dir, st.ID, "checkpoint.*"))
				if len(gens) == 0 {
					t.Fatal("no generations to corrupt")
				}
				for _, g := range gens {
					corruptFile(t, g)
				}
			} else {
				corruptFile(t, newestGeneration(t, dir, st.ID))
			}

			m2, stop2 := startManager(t, chaosConfig(dir, faultfs.OS{}))
			defer stop2()
			final := waitState(t, m2, st.ID, StateDone)
			if final.FinalError != want.FinalError || final.Iterations != want.Iterations {
				t.Fatalf("fallback run diverged: %d iterations / error %v, reference %d / %v",
					final.Iterations, final.FinalError, want.Iterations, want.FinalError)
			}
			if !bytes.Equal(graphAAG(t, m2, st.ID), wantAAG) {
				t.Fatal("fallback result differs bitwise from reference")
			}
			if m2.met.fallbacks.Value() == 0 {
				t.Fatal("corrupt generation did not bump checkpoint_fallback")
			}
			if !hasMessage(eventMessages(t, m2, st.ID), "checkpoint_fallback") {
				t.Fatal("no checkpoint_fallback note in the job's event log")
			}
			if !corruptAll && m2.met.resumes.Value() == 0 {
				t.Fatal("expected the older generation to restore")
			}
		})
	}
}

// seedJobDir fabricates an interrupted job on disk — spec, circuit, and a
// non-terminal state.json with the given recovery-attempt count — exactly
// what a crash-looping daemon leaves behind.
func seedJobDir(t *testing.T, dir, id string, spec JobSpec, circuit []byte, attempts int) {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	jd := filepath.Join(dir, id)
	if err := os.MkdirAll(jd, 0o755); err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"spec.json": specJSON,
		"circuit":   circuit,
	} {
		if err := os.WriteFile(filepath.Join(jd, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stateJSON, err := json.Marshal(persistedState{State: StateRunning, Attempts: attempts})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jd, "state.json"), stateJSON, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCrashLoopQuarantine walks a poison job through the recovery
// attempt budget: each manager construction over the directory counts one
// attempt, and the construction after the budget is exhausted parks the job
// in the terminal quarantined state — counted in jobs_quarantined, noted in
// the event log, directory preserved — instead of re-enqueueing it again.
func TestChaosCrashLoopQuarantine(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	spec := testSpec()
	const id = "j000001"
	seedJobDir(t, dir, id, spec, circuit, 0)

	readAttempts := func() int {
		data, err := os.ReadFile(filepath.Join(dir, id, "state.json"))
		if err != nil {
			t.Fatalf("reading state.json: %v", err)
		}
		var ps persistedState
		if err := json.Unmarshal(data, &ps); err != nil {
			t.Fatalf("decoding state.json: %v", err)
		}
		return ps.Attempts
	}

	// Three incarnations that die before the job checkpoints (the manager is
	// constructed — which counts the attempt — but never Run).
	for i := 1; i <= 3; i++ {
		m, err := New(chaosConfig(dir, faultfs.OS{}))
		if err != nil {
			t.Fatalf("incarnation %d: %v", i, err)
		}
		if got := readAttempts(); got != i {
			t.Fatalf("after incarnation %d: persisted attempts %d, want %d", i, got, i)
		}
		job, ok := m.Get(id)
		if !ok || job.State() != StateQueued {
			t.Fatalf("incarnation %d: job not re-enqueued", i)
		}
	}

	// The fourth incarnation sees the exhausted budget and quarantines.
	m, err := New(chaosConfig(dir, faultfs.OS{}))
	if err != nil {
		t.Fatalf("quarantining incarnation: %v", err)
	}
	job, ok := m.Get(id)
	if !ok {
		t.Fatal("quarantined job lost from the table")
	}
	if job.State() != StateQuarantined {
		t.Fatalf("job state %s, want quarantined", job.State())
	}
	if m.met.quarantined.Value() != 1 {
		t.Fatalf("jobs_quarantined counter %d, want 1", m.met.quarantined.Value())
	}
	if !hasMessage(eventMessages(t, m, id), "quarantined") {
		t.Fatal("no quarantine note in the event log")
	}
	for _, f := range []string{"spec.json", "circuit", "state.json"} {
		if _, err := os.Stat(filepath.Join(dir, id, f)); err != nil {
			t.Fatalf("quarantine did not preserve %s: %v", f, err)
		}
	}

	// Quarantine is terminal and idempotent across restarts: the worker pool
	// of a further incarnation must idle (and exit cleanly), never touching
	// the job, and the counter counts the transition only once.
	m2, stop2 := startManager(t, chaosConfig(dir, faultfs.OS{}))
	time.Sleep(10 * time.Millisecond)
	if job2, _ := m2.Get(id); job2.State() != StateQuarantined {
		t.Fatalf("restart changed quarantined job to %s", job2.State())
	}
	if m2.met.quarantined.Value() != 0 {
		t.Fatal("already-quarantined job was re-counted as a new quarantine")
	}
	stop2()
}

// TestChaosCheckpointResetsAttempts proves the other edge of the quarantine
// policy: a recovered job that reaches one successful checkpoint has its
// attempt budget reset, so steady progress can survive any number of
// restarts without ever being quarantined.
func TestChaosCheckpointResetsAttempts(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	spec := testSpec()
	want, _ := referenceRun(t, spec, circuit)
	seedJobDir(t, dir, "j000001", spec, circuit, 2) // one attempt left

	m, stop := startManager(t, chaosConfig(dir, faultfs.OS{}))
	defer stop()
	final := waitState(t, m, "j000001", StateDone)
	if final.FinalError != want.FinalError {
		t.Fatalf("recovered run final error %v, reference %v", final.FinalError, want.FinalError)
	}
	if final.Attempts != 0 {
		t.Fatalf("attempts %d after successful run, want 0 (reset at first checkpoint)", final.Attempts)
	}
}

// TestChaosScheduleMatrixIsDeterministic re-runs one faulted scenario twice
// and requires the injector's firing record and the job outcome to be
// identical — the property that makes every failure in this file
// reproducible from its seed schedule.
func TestChaosScheduleMatrixIsDeterministic(t *testing.T) {
	circuit := testCircuit(t)
	spec := testSpec()

	run := func() (fired []string, final JobStatus) {
		dir := t.TempDir()
		inj := faultfs.NewInjector(faultfs.OS{},
			faultfs.Fault{Op: faultfs.OpSync, PathSubstr: ".ckpt-", N: 1, Err: syscall.ENOSPC},
			faultfs.Fault{Op: faultfs.OpRename, PathSubstr: "state.json", N: 2, Err: syscall.EBUSY},
		)
		m, stop := startManager(t, chaosConfig(dir, inj))
		defer stop()
		st, err := m.Submit(spec, circuit)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		final = waitTerminal(t, m, st.ID)
		for _, f := range inj.Fired() {
			// Normalize the random temp suffix and the per-run directory so
			// the records compare by (operation, logical file).
			f = strings.ReplaceAll(f, dir, "<dir>")
			if i := strings.Index(f, ".tmp-"); i >= 0 {
				f = f[:i] + ".tmp-X"
			}
			if i := strings.Index(f, ".ckpt-"); i >= 0 {
				f = f[:i] + ".ckpt-X"
			}
			fired = append(fired, f)
		}
		return fired, final
	}

	fired1, final1 := run()
	fired2, final2 := run()
	if fmt.Sprint(fired1) != fmt.Sprint(fired2) {
		t.Fatalf("fault firing records differ between identical runs:\n%v\n%v", fired1, fired2)
	}
	if final1.State != final2.State || final1.FinalError != final2.FinalError {
		t.Fatalf("outcomes differ between identical runs: %+v vs %+v", final1, final2)
	}
}
