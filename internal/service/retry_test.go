package service

import (
	"syscall"
	"testing"
	"time"
)

// TestBackoffPinnedSchedule pins the exact capped-backoff schedule: the
// delays are pure functions of (key, attempt, base, cap), so any change to
// the hash, the window arithmetic or the cap clamping shows up as a diff
// against these golden values. A drift here silently changes when retries
// land in production and breaks chaos-test determinism, which is why the
// values are frozen rather than recomputed from the formula.
func TestBackoffPinnedSchedule(t *testing.T) {
	const (
		base = 2 * time.Millisecond
		cap  = 250 * time.Millisecond
	)
	cases := []struct {
		key     string
		attempt int
		want    time.Duration
	}{
		{"jobs/j000001/state.json", 1, 1526060},
		{"jobs/j000001/state.json", 2, 3523666},
		{"jobs/j000001/state.json", 3, 7629408},
		{"jobs/j000001/state.json", 4, 12154715},
		{"jobs/j000001/state.json", 5, 24640539},
		{"jobs/j000001/state.json", 6, 63061485},
		{"jobs/j000001/state.json", 7, 118447297},
		{"jobs/j000001/state.json", 8, 127306199},
		{"cluster/redispatch/j000002", 1, 1331683},
		{"cluster/redispatch/j000002", 2, 2034571},
		{"cluster/redispatch/j000002", 3, 4953438},
		{"cluster/redispatch/j000002", 4, 12881588},
		{"cluster/redispatch/j000002", 5, 23555219},
		{"cluster/redispatch/j000002", 6, 46395111},
		{"cluster/redispatch/j000002", 7, 124772830},
		{"cluster/redispatch/j000002", 8, 200177567},
	}
	for _, tc := range cases {
		if got := Backoff(tc.key, tc.attempt, base, cap); got != tc.want {
			t.Errorf("Backoff(%q, %d) = %v, want %v", tc.key, tc.attempt, got, tc.want)
		}
	}

	for _, tc := range cases {
		// Window invariant: delay in [d/2, d] for the capped doubled base.
		d := base << (tc.attempt - 1)
		if d > cap {
			d = cap
		}
		got := Backoff(tc.key, tc.attempt, base, cap)
		if got < d/2 || got > d {
			t.Errorf("Backoff(%q, %d) = %v outside [%v, %v]", tc.key, tc.attempt, got, d/2, d)
		}
	}

	// Degenerate attempts clamp instead of shifting out of range.
	if got := Backoff("k", 0, base, cap); got != Backoff("k", 1, base, cap) {
		t.Errorf("attempt 0 should clamp to attempt 1, got %v", got)
	}
	if got := Backoff("k", 200, base, cap); got < cap/2 || got > cap {
		t.Errorf("huge attempt should land in the cap window, got %v", got)
	}
}

// TestRetrierUsesInjectedSleepOnly asserts the whole delay schedule flows
// through the injected sleep: a recording stub observes exactly the pinned
// backoffDelay sequence, and nothing else waits.
func TestRetrierUsesInjectedSleepOnly(t *testing.T) {
	var slept []time.Duration
	r := &retrier{sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := r.do("key", func() error {
		calls++
		if calls < 3 {
			return syscall.EAGAIN
		}
		return nil
	})
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	want := []time.Duration{backoffDelay("key", 1), backoffDelay("key", 2)}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}
