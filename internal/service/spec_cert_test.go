package service

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/errest"
)

// TestSpecMetricNormalization: the metric field normalizes deterministically —
// absent means the default, case and whitespace are canonicalized, unknown
// names fail with one stable message — so every consumer (query parsing,
// persistence, resume) sees the same canonical spec.
func TestSpecMetricNormalization(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"", "er"},
		{"er", "er"},
		{"ER", "er"},
		{" Nmed\t", "nmed"},
		{"MRED", "mred"},
	} {
		spec := JobSpec{Metric: tc.in, Threshold: 0.01}
		if err := spec.Normalize(); err != nil {
			t.Fatalf("metric %q: %v", tc.in, err)
		}
		if spec.Metric != tc.want {
			t.Fatalf("metric %q normalized to %q, want %q", tc.in, spec.Metric, tc.want)
		}
		// Normalizing the canonical form again is a fixed point.
		again := spec
		if err := again.Normalize(); err != nil {
			t.Fatalf("metric %q: re-normalize: %v", tc.in, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("metric %q: Normalize is not idempotent: %+v vs %+v", tc.in, spec, again)
		}
	}
	for _, bad := range []string{"wat", "er2", "max"} {
		spec := JobSpec{Metric: bad, Threshold: 0.01}
		if err := spec.Normalize(); err == nil {
			t.Fatalf("unknown metric %q accepted", bad)
		}
	}
}

// TestSpecV2RoundTrip is the regression for the v2-era persistence format:
// a spec JSON written by a daemon that predates the certified job type (no
// max_error / cert_conflict_budget fields) must still load, normalize and
// rebuild the exact same core.Options — an uncertified job stays
// uncertified across the upgrade.
func TestSpecV2RoundTrip(t *testing.T) {
	const v2 = `{
		"metric": "nmed", "threshold": 0.03, "seed": 1, "eval_patterns": 10000,
		"initial_rounds": 64, "max_lacs_per_node": 3, "patience": 2,
		"scale": 0.8, "max_stall": 20, "max_depth_ratio": 0,
		"workers": 1, "format": "blif"
	}`
	var spec JobSpec
	if err := json.Unmarshal([]byte(v2), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatalf("v2-era spec no longer normalizes: %v", err)
	}
	if spec.MaxError != 0 || spec.CertConflictBudget != 0 {
		t.Fatalf("v2-era spec gained certification state: %+v", spec)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxError != 0 {
		t.Fatalf("v2-era spec produced a certified session (MaxError %v)", opts.MaxError)
	}

	// Persist → reload → normalize is the restart path; it must be a fixed
	// point, and the reloaded spec must rebuild identical options.
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var reloaded JobSpec
	if err := json.Unmarshal(blob, &reloaded); err != nil {
		t.Fatal(err)
	}
	if err := reloaded.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, reloaded) {
		t.Fatalf("spec did not round-trip:\nbefore: %+v\nafter:  %+v", spec, reloaded)
	}
	opts2, err := reloaded.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opts, opts2) {
		t.Fatal("round-tripped spec rebuilds different options")
	}
}

// TestSpecCertifiedQueryRoundTrip pins the certified job type end to end:
// HTTP query → JobSpec → Normalize → core.Options with the exact bound set.
func TestSpecCertifiedQueryRoundTrip(t *testing.T) {
	r, _ := http.NewRequest(http.MethodPost,
		"/jobs?metric=maxerr&threshold=0.05&certbudget=100000", nil)
	spec, err := specFromQuery(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	// maxerr without an explicit max_error pins the bound to the threshold.
	if spec.MaxError != 0.05 || spec.CertConflictBudget != 100000 {
		t.Fatalf("certified spec did not normalize: %+v", spec)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxError != 0.05 || opts.CertConflictBudget != 100000 || opts.Metric != errest.NMED {
		t.Fatalf("certified spec did not reach the options: %+v", opts)
	}

	// An explicit bound overrides the threshold default.
	r, _ = http.NewRequest(http.MethodPost,
		"/jobs?metric=er&threshold=0.1&maxerror=0.02", nil)
	spec, err = specFromQuery(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if spec.MaxError != 0.02 {
		t.Fatalf("maxerror query parameter lost: %+v", spec)
	}

	// A certified job with no usable bound is rejected at submission.
	zero := JobSpec{Metric: "maxerr", Threshold: 0}
	if err := zero.Normalize(); err == nil {
		t.Fatal("maxerr with zero bound accepted")
	}
	neg := JobSpec{Metric: "er", Threshold: 0.01, MaxError: -1}
	if err := neg.Normalize(); err == nil {
		t.Fatal("negative max_error accepted")
	}
}
