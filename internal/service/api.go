package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/aiger"
	"repro/internal/blif"
	"repro/internal/verilog"
)

// maxCircuitBytes bounds POST /jobs bodies; industrial AIGs are a few MB,
// so 64 MiB is generous while still stopping an accidental firehose.
const maxCircuitBytes = 64 << 20

// defaultEventWriteTimeout bounds a single NDJSON event write on the
// /jobs/{id}/events stream. The server deliberately runs with no global
// WriteTimeout (the stream is long-lived); this per-write deadline is what
// keeps a stalled consumer from pinning the handler goroutine and its
// subscription forever.
const defaultEventWriteTimeout = 30 * time.Second

// HandlerOptions tunes NewHandlerOpts.
type HandlerOptions struct {
	// EventWriteTimeout is the per-write deadline on the NDJSON event
	// stream: a subscriber that does not drain one event within it is
	// disconnected. Zero means defaultEventWriteTimeout; negative disables
	// the deadline (tests of the legacy behavior only).
	EventWriteTimeout time.Duration
}

// NewHandler exposes the manager over HTTP with default options:
//
//	POST   /jobs              submit (body = circuit; params in the query)
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         status + iteration history (?history=0 to omit)
//	GET    /jobs/{id}/events  NDJSON progress stream (?from=N to replay)
//	GET    /jobs/{id}/result  optimized circuit (?format=aag|aig|blif|v)
//	DELETE /jobs/{id}         cancel
//	GET    /healthz           liveness
//	GET    /metrics           Prometheus text exposition
func NewHandler(m *Manager) http.Handler {
	return NewHandlerOpts(m, HandlerOptions{})
}

// NewHandlerOpts is NewHandler with explicit options.
func NewHandlerOpts(m *Manager, opts HandlerOptions) http.Handler {
	if opts.EventWriteTimeout == 0 {
		opts.EventWriteTimeout = defaultEventWriteTimeout
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(m, w, r) })
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) { handleList(m, w, r) })
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleStatus(m, w, r) })
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) { handleEvents(m, opts, w, r) })
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { handleResult(m, w, r) })
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) { handleCancel(m, w, r) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { handleHealthz(m, w, r) })
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.Registry().WritePrometheus(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the structured error body {"error": ..., "code": ...}:
// a human-readable message plus a stable machine-matchable code, so clients
// can branch without parsing prose.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	})
}

// SpecFromQuery builds a JobSpec from POST /jobs query parameters. Every
// knob mirrors a cmd/alsrac flag. Exported because the cluster coordinator
// accepts the same submission surface.
func SpecFromQuery(r *http.Request) (JobSpec, error) {
	return specFromQuery(r)
}

func specFromQuery(r *http.Request) (JobSpec, error) {
	q := r.URL.Query()
	spec := JobSpec{
		Metric: q.Get("metric"),
		Format: q.Get("format"),
	}
	// An absent metric normalizes to the default inside JobSpec.Normalize —
	// the same path a persisted spec without the field takes.
	var err error
	parseF := func(key string, dst *float64) {
		if err != nil || !q.Has(key) {
			return
		}
		if v, perr := strconv.ParseFloat(q.Get(key), 64); perr == nil {
			*dst = v
		} else {
			err = fmt.Errorf("bad %s=%q", key, q.Get(key))
		}
	}
	parseI := func(key string, dst *int) {
		if err != nil || !q.Has(key) {
			return
		}
		if v, perr := strconv.Atoi(q.Get(key)); perr == nil {
			*dst = v
		} else {
			err = fmt.Errorf("bad %s=%q", key, q.Get(key))
		}
	}
	spec.Threshold = 0.01
	parseF("threshold", &spec.Threshold)
	if q.Has("seed") {
		if v, perr := strconv.ParseInt(q.Get("seed"), 10, 64); perr == nil {
			spec.Seed = v
		} else {
			err = fmt.Errorf("bad seed=%q", q.Get("seed"))
		}
	}
	parseI("eval", &spec.EvalPatterns)
	parseI("n", &spec.InitialRounds)
	parseI("l", &spec.MaxLACsPerNode)
	parseI("t", &spec.Patience)
	parseF("r", &spec.Scale)
	parseI("maxstall", &spec.MaxStall)
	parseF("maxdepth", &spec.MaxDepthRatio)
	parseI("workers", &spec.Workers)
	parseF("timeout", &spec.TimeoutSec)
	parseF("maxerror", &spec.MaxError)
	if q.Has("certbudget") {
		if v, perr := strconv.ParseInt(q.Get("certbudget"), 10, 64); perr == nil {
			spec.CertConflictBudget = v
		} else {
			err = fmt.Errorf("bad certbudget=%q", q.Get("certbudget"))
		}
	}
	if q.Has("windowed") {
		switch q.Get("windowed") {
		case "1", "true":
			spec.Windowed = true
		case "0", "false":
		default:
			err = fmt.Errorf("bad windowed=%q", q.Get("windowed"))
		}
	}
	parseI("window_max_pis", &spec.WindowMaxPIs)
	parseI("window_max_nodes", &spec.WindowMaxNodes)
	parseI("window_max_divisors", &spec.WindowMaxDivisors)
	parseI("window_skip_fanout_roots", &spec.WindowSkipFanoutRoots)
	parseI("window_skip_fanout_divisors", &spec.WindowSkipFanoutDivisors)
	return spec, err
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	spec, err := specFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	// MaxBytesReader (not a bare LimitReader) also closes the connection on
	// overrun, so an unbounded upload cannot keep streaming into a rejected
	// request.
	r.Body = http.MaxBytesReader(w, r.Body, maxCircuitBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				"circuit body exceeds %d bytes", maxCircuitBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty body: POST the circuit (BLIF or AIGER) as the request body")
		return
	}
	st, err := m.Submit(spec, body)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusServiceUnavailable, "queue_full", "%v", err)
		case errors.Is(err, ErrUnparsable):
			// 422: the request was well-formed HTTP, the entity is not a
			// usable circuit — oversized per the parser limits or malformed.
			code := "unparsable"
			if errors.Is(err, aiger.ErrTooLarge) || errors.Is(err, blif.ErrTooLarge) {
				code = "too_large"
			}
			writeError(w, http.StatusUnprocessableEntity, code, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func handleList(m *Manager, w http.ResponseWriter, _ *http.Request) {
	jobs := m.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func handleStatus(m *Manager, w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	withHistory := r.URL.Query().Get("history") != "0"
	writeJSON(w, http.StatusOK, job.Status(withHistory))
}

func handleCancel(m *Manager, w http.ResponseWriter, r *http.Request) {
	st, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the job's progress as NDJSON: one JSON object per
// line, replaying the event log from ?from= (default 0) and then following
// live until the job reaches a terminal state or the client disconnects.
//
// Slow-consumer hardening: every write is preceded by a per-write deadline
// (via http.ResponseController, using the manager's injected clock) so a
// client that stops reading is disconnected after EventWriteTimeout rather
// than pinning this goroutine — and its event subscription — indefinitely.
// Event loss for such a client is already the contract: publishLocked drops
// events to full subscriber channels rather than wedging the publisher.
func handleEvents(m *Manager, opts HandlerOptions, w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job")
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			from = n
		}
	}
	replay, live, unsub := job.Subscribe(from)
	defer unsub()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if opts.EventWriteTimeout > 0 && m.cfg.Now != nil {
			// Best effort: a ResponseWriter without deadline support (plain
			// recorders) degrades to the legacy unbounded write.
			_ = rc.SetWriteDeadline(m.cfg.Now().Add(opts.EventWriteTimeout))
		}
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return // terminal: the job closed the stream
			}
			if !emit(ev) {
				return
			}
		}
	}
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g, err := m.ResultGraph(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "not_found", "no such job")
		case errors.Is(err, ErrNotDone):
			writeError(w, http.StatusConflict, "not_done", "job is not done")
		default:
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		}
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "aag"
	}
	switch format {
	case "aag":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = aiger.Write(w, g, "aag")
	case "aig":
		w.Header().Set("Content-Type", "application/octet-stream")
		err = aiger.Write(w, g, "aig")
	case "blif":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = blif.FromAIG(g).Write(w)
	case "v":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = verilog.Write(w, g)
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "unknown format %q (aag, aig, blif, v)", format)
		return
	}
	if err != nil {
		m.logf("job %s: writing result: %v", id, err)
	}
}

func handleHealthz(m *Manager, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":   true,
		"jobs": len(m.Jobs()),
	})
}
