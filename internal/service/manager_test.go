package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aiger"
	"repro/internal/bench"
	"repro/internal/core"
)

// testCircuit returns a 16-bit carry-lookahead adder as ASCII AIGER bytes.
// At the testSpec threshold the flow runs ~17 iterations — long enough to
// interrupt mid-run, short enough for fast tests.
func testCircuit(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aiger.Write(&buf, bench.CLA(16), "aag"); err != nil {
		t.Fatalf("serializing test circuit: %v", err)
	}
	return buf.Bytes()
}

func testSpec() JobSpec {
	return JobSpec{
		Metric:       "er",
		Threshold:    0.05,
		Seed:         3,
		EvalPatterns: 1024,
		Workers:      1,
	}
}

// graphAAG serializes a result graph for bitwise comparison.
func graphAAG(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	g, err := m.ResultGraph(id)
	if err != nil {
		t.Fatalf("ResultGraph(%s): %v", id, err)
	}
	var buf bytes.Buffer
	if err := aiger.Write(&buf, g, "aag"); err != nil {
		t.Fatalf("serializing result: %v", err)
	}
	return buf.Bytes()
}

// referenceRun computes the uninterrupted single-process answer for a spec.
func referenceRun(t *testing.T, spec JobSpec, circuit []byte) (core.Result, []byte) {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	g, err := ParseCircuit(spec.Format, circuit)
	if err != nil {
		t.Fatalf("parse circuit: %v", err)
	}
	res := core.Run(g, opts)
	var buf bytes.Buffer
	if err := aiger.Write(&buf, res.Graph, "aag"); err != nil {
		t.Fatalf("serializing reference: %v", err)
	}
	return res, buf.Bytes()
}

// startManager builds a manager over dir and runs its worker pool; the
// returned stop function shuts it down gracefully and asserts no goroutine
// leaked.
func startManager(t *testing.T, cfg Config) (*Manager, func()) {
	t.Helper()
	base := runtime.NumGoroutine()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Run(ctx)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			wg.Wait()
			waitGoroutines(t, base)
		})
	}
	return m, stop
}

// waitGoroutines polls until the goroutine count returns to (about) base,
// failing the test on a leak. The small slack absorbs runtime-internal
// goroutines (e.g. the race detector's background workers).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitState polls until the job reaches state want (or any terminal state,
// which then must be want).
func waitState(t *testing.T, m *Manager, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := job.Status(true)
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestManagerRunsJobToCompletion: a submitted job must produce exactly the
// result a direct core.Run yields for the same spec and circuit.
func TestManagerRunsJobToCompletion(t *testing.T) {
	circuit := testCircuit(t)
	spec := testSpec()
	want, wantAAG := referenceRun(t, spec, circuit)

	m, stop := startManager(t, Config{Dir: t.TempDir(), Workers: 2, Now: time.Now})
	defer stop()

	st, err := m.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != StateQueued {
		t.Fatalf("fresh job state %s, want queued", st.State)
	}
	final := waitState(t, m, st.ID, StateDone)
	if final.Iterations != want.Iterations || final.Applied != want.Applied {
		t.Fatalf("job did %d iterations / %d applied, reference %d / %d",
			final.Iterations, final.Applied, want.Iterations, want.Applied)
	}
	if final.FinalError != want.FinalError {
		t.Fatalf("job final error %v, reference %v", final.FinalError, want.FinalError)
	}
	if !bytes.Equal(graphAAG(t, m, st.ID), wantAAG) {
		t.Fatal("service result differs from direct core.Run")
	}
	if len(final.History) != want.Iterations {
		t.Fatalf("status history has %d records, want %d", len(final.History), want.Iterations)
	}
}

// TestKillAndResume is the crash/resume e2e of the issue: run a job under a
// manager, shut the manager down mid-run (checkpointing the in-flight
// session), then bring up a fresh manager over the same directory and let
// the resumed session finish. The final result must be bitwise identical to
// an uninterrupted run with the same seed.
func TestKillAndResume(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	spec := testSpec()
	want, wantAAG := referenceRun(t, spec, circuit)
	if want.Iterations < 3 {
		t.Fatalf("reference run too short (%d iterations) to interrupt meaningfully", want.Iterations)
	}

	// Phase 1: start, let the session make some progress, then "crash"
	// (graceful shutdown checkpoints the in-flight job and leaves it
	// resumable — the same on-disk state a SIGKILL after a periodic
	// checkpoint would leave).
	m1, stop1 := startManager(t, Config{Dir: dir, CheckpointEvery: 1})
	st, err := m1.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, _ := m1.Get(st.ID)
		s := job.Status(false)
		if s.Iterations >= 1 || s.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started iterating")
		}
	}
	stop1()

	interrupted, _ := m1.Get(st.ID)
	istat := interrupted.Status(false)
	if istat.State.terminal() && istat.State != StateDone {
		t.Fatalf("interrupted job in unexpected state %s (%s)", istat.State, istat.Error)
	}
	resumed := !istat.State.terminal()
	if resumed {
		gens, err := filepath.Glob(filepath.Join(dir, st.ID, "checkpoint.*"))
		if err != nil || len(gens) == 0 {
			t.Fatalf("no checkpoint generation after shutdown (%v, %v)", gens, err)
		}
	} else {
		// The job beat the shutdown; the restart phase below still must
		// serve the persisted result.
		t.Log("job finished before shutdown; exercising restart-load path only")
	}

	// Phase 2: a fresh manager over the same directory recovers the job.
	m2, stop2 := startManager(t, Config{Dir: dir, CheckpointEvery: 1})
	defer stop2()
	final := waitState(t, m2, st.ID, StateDone)
	if final.FinalError != want.FinalError {
		t.Fatalf("resumed final error %v, reference %v", final.FinalError, want.FinalError)
	}
	if final.Iterations != want.Iterations || final.Applied != want.Applied {
		t.Fatalf("resumed run did %d iterations / %d applied, reference %d / %d",
			final.Iterations, final.Applied, want.Iterations, want.Applied)
	}
	if !bytes.Equal(graphAAG(t, m2, st.ID), wantAAG) {
		t.Fatal("resumed result differs bitwise from uninterrupted run")
	}
	if resumed && m2.met.resumes.Value() == 0 {
		t.Fatal("job restarted from scratch: expected a checkpoint restore")
	}
}

// TestGracefulShutdownCheckpointsAllInflight: with several jobs running
// concurrently, cancelling the manager must leave every non-finished job
// resumable, and a second manager must finish all of them correctly.
func TestGracefulShutdownCheckpointsAllInflight(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	const jobs = 3

	specs := make([]JobSpec, jobs)
	wantAAG := make(map[string][]byte)
	m1, stop1 := startManager(t, Config{Dir: dir, Workers: jobs, CheckpointEvery: 1})
	ids := make([]string, jobs)
	for i := range specs {
		specs[i] = testSpec()
		specs[i].Seed = int64(10 + i)
		st, err := m1.Submit(specs[i], circuit)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = st.ID
		_, aag := referenceRun(t, specs[i], circuit)
		wantAAG[st.ID] = aag
	}
	// Give the workers a moment to pick jobs up, then shut down mid-run.
	deadline := time.Now().Add(60 * time.Second)
	for {
		started := 0
		for _, id := range ids {
			job, _ := m1.Get(id)
			if s := job.Status(false); s.Iterations >= 1 || s.State.terminal() {
				started++
			}
		}
		if started == jobs || time.Now().After(deadline) {
			break
		}
	}
	stop1()

	m2, stop2 := startManager(t, Config{Dir: dir, Workers: jobs, CheckpointEvery: 1})
	defer stop2()
	for _, id := range ids {
		waitState(t, m2, id, StateDone)
		if !bytes.Equal(graphAAG(t, m2, id), wantAAG[id]) {
			t.Fatalf("job %s: resumed result differs from reference", id)
		}
	}
}

// TestCancelQueuedJob: cancelling before a worker picks the job up must
// finalize it immediately, and a worker that later pops it must skip it.
func TestCancelQueuedJob(t *testing.T) {
	m, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// No Run: the job stays queued.
	st, err := m.Submit(testSpec(), testCircuit(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state %s after cancel, want cancelled", got.State)
	}
	// Idempotent.
	if got, err = m.Cancel(st.ID); err != nil || got.State != StateCancelled {
		t.Fatalf("second cancel: %v, state %s", err, got.State)
	}
	if _, err := m.ResultGraph(st.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("ResultGraph on cancelled job: %v, want ErrNotDone", err)
	}
}

// TestCancelRunningJob: a running job must stop at the next step boundary.
func TestCancelRunningJob(t *testing.T) {
	m, stop := startManager(t, Config{Dir: t.TempDir(), CheckpointEvery: 1})
	defer stop()
	spec := testSpec()
	st, err := m.Submit(spec, testCircuit(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, st.ID, StateRunning)
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, _ := m.Get(st.ID)
		s := job.Status(false)
		if s.State == StateCancelled || s.State == StateDone {
			// Done is possible if the last step finished before the cancel
			// landed; both are acceptable terminal outcomes.
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", s.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobTimeoutReturnsBestSoFar: a job with a tiny deadline must complete
// as done (not failed), flagged timed_out, with a valid best-so-far graph.
func TestJobTimeoutReturnsBestSoFar(t *testing.T) {
	m, stop := startManager(t, Config{Dir: t.TempDir()})
	defer stop()
	spec := testSpec()
	spec.TimeoutSec = 0.000001 // expires before the first step commits
	st, err := m.Submit(spec, testCircuit(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitState(t, m, st.ID, StateDone)
	if !final.TimedOut {
		t.Fatal("job not flagged timed_out")
	}
	if final.Reason != "deadline" {
		t.Fatalf("reason %q, want deadline", final.Reason)
	}
	g, err := m.ResultGraph(st.ID)
	if err != nil {
		t.Fatalf("ResultGraph: %v", err)
	}
	if g.NumAnds() == 0 {
		t.Fatal("best-so-far graph is empty")
	}
}

// TestSubmitRejectsBadInput: malformed circuits and specs fail at submit
// time, never reaching a worker.
func TestSubmitRejectsBadInput(t *testing.T) {
	m, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Submit(testSpec(), []byte("not a circuit")); err == nil {
		t.Fatal("garbage circuit accepted")
	}
	bad := testSpec()
	bad.Metric = "wer"
	if _, err := m.Submit(bad, testCircuit(t)); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if len(m.Jobs()) != 0 {
		t.Fatalf("%d jobs registered after rejected submissions", len(m.Jobs()))
	}
}

// TestSubmitQueueFull: beyond QueueSize, Submit must fail with ErrQueueFull
// and leave no trace in memory or on disk.
func TestSubmitQueueFull(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, QueueSize: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// No Run: the single queue slot fills and stays full.
	if _, err := m.Submit(testSpec(), testCircuit(t)); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	_, err = m.Submit(testSpec(), testCircuit(t))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second Submit: %v, want ErrQueueFull", err)
	}
	if n := len(m.Jobs()); n != 1 {
		t.Fatalf("%d jobs after rollback, want 1", n)
	}
	entries, _ := os.ReadDir(dir)
	dirs := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "j") {
			dirs++
		}
	}
	if dirs != 1 {
		t.Fatalf("%d job dirs on disk after rollback, want 1", dirs)
	}
}

// TestRestartServesTerminalJobs: a manager over a directory with finished
// jobs must serve their status and results without re-running anything.
func TestRestartServesTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	circuit := testCircuit(t)
	spec := testSpec()
	_, wantAAG := referenceRun(t, spec, circuit)

	m1, stop1 := startManager(t, Config{Dir: dir})
	st, err := m1.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m1, st.ID, StateDone)
	stop1()

	m2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	// No Run needed: the job is terminal.
	job, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("finished job not recovered")
	}
	if s := job.Status(false); s.State != StateDone {
		t.Fatalf("recovered state %s, want done", s.State)
	}
	if !bytes.Equal(graphAAG(t, m2, st.ID), wantAAG) {
		t.Fatal("recovered result differs from reference")
	}
	// IDs continue after the recovered job rather than colliding with it.
	st2, err := m2.Submit(spec, circuit)
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if st2.ID <= st.ID {
		t.Fatalf("new id %s does not follow recovered id %s", st2.ID, st.ID)
	}
}

// TestEventStreamSeesStepsAndTerminalState: a subscriber receives every
// step event plus the terminal transition, and the channel closes.
func TestEventStreamSeesStepsAndTerminalState(t *testing.T) {
	m, stop := startManager(t, Config{Dir: t.TempDir()})
	defer stop()
	st, err := m.Submit(testSpec(), testCircuit(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	job, _ := m.Get(st.ID)
	replay, live, unsub := job.Subscribe(0)
	defer unsub()
	events := append([]Event(nil), replay...)
	timeout := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				goto donestream
			}
			events = append(events, ev)
		case <-timeout:
			t.Fatal("event stream never terminated")
		}
	}
donestream:
	steps, doneSteps, terminal := 0, 0, false
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Step != nil {
			steps++
			if ev.Step.Done {
				doneSteps++
			}
		}
		if ev.State.terminal() {
			terminal = true
		}
	}
	if doneSteps != 1 {
		t.Fatalf("saw %d Done step events, want exactly 1", doneSteps)
	}
	if !terminal {
		t.Fatal("no terminal state event observed")
	}
	final := waitState(t, m, st.ID, StateDone)
	// One step event per iteration; the terminating event either rides on
	// the final iteration (threshold hit) or is its own extra step (stall).
	if steps != final.Iterations && steps != final.Iterations+1 {
		t.Fatalf("saw %d step events for %d iterations", steps, final.Iterations)
	}
}

// TestMetricsExposition: after a completed job the Prometheus endpoint must
// report consistent counters.
func TestMetricsExposition(t *testing.T) {
	m, stop := startManager(t, Config{Dir: t.TempDir(), Now: time.Now})
	defer stop()
	st, err := m.Submit(testSpec(), testCircuit(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitState(t, m, st.ID, StateDone)
	var buf bytes.Buffer
	m.Registry().WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"alsrac_jobs_submitted_total 1",
		`alsrac_jobs{state="done"} 1`,
		`alsrac_jobs{state="queued"} 0`,
		"alsrac_queue_depth 0",
		"# TYPE alsrac_step_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	if m.met.iterations.Value() != uint64(final.Iterations) {
		t.Fatalf("iterations counter %d, status says %d", m.met.iterations.Value(), final.Iterations)
	}
	if m.met.lacsApplied.Value() != uint64(final.Applied) {
		t.Fatalf("lacs counter %d, status says %d", m.met.lacsApplied.Value(), final.Applied)
	}
}
