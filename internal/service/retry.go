package service

import (
	"errors"
	"hash/fnv"
	"syscall"
	"time"
)

// Transient store errors — the errno classes that tend to clear on their
// own (interrupted syscalls, descriptor pressure, a filesystem briefly out
// of space while a log rotates) — are retried with capped exponential
// backoff before a job is failed. Everything else (EACCES, EROFS, a corrupt
// payload) fails fast: retrying cannot fix a permission or a bug.
//
// The jitter is deterministic (alsraclint forbids unseeded randomness in
// this package): it is derived by hashing the retry key and the attempt
// number, which decorrelates concurrent workers without an RNG.

const (
	retryAttempts  = 4 // total tries: 1 initial + 3 retries
	retryBaseDelay = 2 * time.Millisecond
	retryMaxDelay  = 250 * time.Millisecond
)

// isTransientErrno classifies an error chain by errno.
func isTransientErrno(err error) bool {
	var errno syscall.Errno
	if !errors.As(err, &errno) {
		return false
	}
	switch errno {
	case syscall.EAGAIN, syscall.EINTR, syscall.EBUSY,
		syscall.EMFILE, syscall.ENFILE, syscall.ENOSPC:
		return true
	}
	return false
}

// retrier re-runs an operation on transient errno failures. sleep and
// onRetry are injected: tests pass a no-op sleep, the manager counts
// retries into the store_retries metric.
type retrier struct {
	sleep   func(time.Duration)
	onRetry func()
}

// do runs f up to retryAttempts times. Non-transient errors (and success)
// return immediately; the final transient error is returned as-is so the
// caller's errno classification still works. Every delay flows through the
// injected sleep — there is no fallback to time.Sleep here, so a test that
// injects a recording no-op observes the exact schedule Backoff pins.
func (r *retrier) do(key string, f func() error) error {
	err := f()
	for attempt := 1; attempt < retryAttempts && err != nil && isTransientErrno(err); attempt++ {
		if r.onRetry != nil {
			r.onRetry()
		}
		if r.sleep != nil {
			r.sleep(backoffDelay(key, attempt))
		}
		err = f()
	}
	return err
}

// backoffDelay is the store retrier's schedule: Backoff at the package's
// base and cap.
func backoffDelay(key string, attempt int) time.Duration {
	return Backoff(key, attempt, retryBaseDelay, retryMaxDelay)
}

// Backoff computes the capped exponential backoff with deterministic jitter
// for one retry: the delay lies in [d/2, d] where d doubles per attempt
// (1-based) from base up to max, and the point inside the window is fixed by
// hashing (key, attempt) — FNV-1a, no RNG, so concurrent callers with
// distinct keys decorrelate while any single (key, attempt) pair always
// waits the same duration. Exported for the cluster coordinator, which uses
// the same schedule to pace job redispatch after a worker failure.
func Backoff(key string, attempt int, base, max time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := max
	if attempt-1 < 63 {
		d = base << (attempt - 1)
	}
	if d <= 0 || d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d/2 + jitter
}
