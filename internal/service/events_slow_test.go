package service

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// stalledWriter models a peer that never drains its receive buffer, the way
// a real conn behaves under http.ResponseController: a Write blocks until
// the handler arms a write deadline, then fails with a deadline error. If
// the handler never sets a deadline — the regression this test pins — the
// write blocks forever and the test times out.
type stalledWriter struct {
	once     sync.Once
	deadline chan struct{}

	mu           sync.Mutex
	deadlineSets int
}

func newStalledWriter() *stalledWriter {
	return &stalledWriter{deadline: make(chan struct{})}
}

func (w *stalledWriter) Header() http.Header { return http.Header{} }
func (w *stalledWriter) WriteHeader(int)     {}

func (w *stalledWriter) Write(p []byte) (int, error) {
	<-w.deadline
	return 0, os.ErrDeadlineExceeded
}

func (w *stalledWriter) SetWriteDeadline(t time.Time) error {
	w.mu.Lock()
	w.deadlineSets++
	w.mu.Unlock()
	w.once.Do(func() { close(w.deadline) })
	return nil
}

// TestEventsSlowConsumerDisconnected pins the write-deadline contract of
// GET /jobs/{id}/events: a subscriber that stops reading is disconnected by
// the per-write deadline instead of pinning the handler goroutine and its
// subscription forever.
func TestEventsSlowConsumerDisconnected(t *testing.T) {
	// No Run(): the job stays queued, so its subscription stays live and the
	// replay of the queued-transition event is what hits the stalled write.
	m, err := New(Config{Dir: t.TempDir(), Now: time.Now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := m.Submit(testSpec(), testCircuit(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	w := newStalledWriter()
	r := httptest.NewRequest("GET", "/jobs/"+st.ID+"/events", nil)
	r.SetPathValue("id", st.ID)

	done := make(chan struct{})
	go func() {
		defer close(done)
		handleEvents(m, HandlerOptions{EventWriteTimeout: 50 * time.Millisecond}, w, r)
	}()

	// Wait for the handler's subscription, then publish the event whose
	// write the stalled consumer will never drain.
	job, _ := m.Get(st.ID)
	for deadline := time.Now().Add(5 * time.Second); ; {
		job.mu.Lock()
		n := len(job.subs)
		job.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	job.note("poke")

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("handler still blocked on a consumer that never reads: write deadline not armed")
	}

	w.mu.Lock()
	sets := w.deadlineSets
	w.mu.Unlock()
	if sets == 0 {
		t.Fatalf("handler returned without arming a write deadline")
	}

	// The deferred unsub ran: the job carries no dangling subscription that
	// would make every future publish scan a dead channel.
	job.mu.Lock()
	subs := len(job.subs)
	job.mu.Unlock()
	if subs != 0 {
		t.Fatalf("%d subscription(s) leaked after disconnect", subs)
	}
}

// TestEventsNeverReadingClientNoLeak runs the end-to-end variant over a real
// server: a client connects to the event stream, never reads a byte, and the
// job must still run to completion with every handler goroutine reclaimed
// after the server shuts down.
func TestEventsNeverReadingClientNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	m, stop := startManager(t, Config{Dir: t.TempDir(), Now: time.Now})
	srv := httptest.NewServer(NewHandlerOpts(m, HandlerOptions{EventWriteTimeout: 100 * time.Millisecond}))

	st := postJob(t, srv, "metric=er&threshold=0.05&seed=3&eval=1024", testCircuit(t))

	// A raw connection that sends the request and then goes silent: no reads,
	// no close, until the test tears it down.
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /jobs/%s/events HTTP/1.1\r\nHost: x\r\n\r\n", st.ID); err != nil {
		t.Fatalf("write request: %v", err)
	}

	// The stalled subscriber must not wedge the job.
	waitState(t, m, st.ID, StateDone)

	srv.Close()
	stop() // asserts goroutine count returned to base
	waitGoroutines(t, base)
}
