package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/aig"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/faultfs"
	"repro/internal/obs"
)

// Sentinel errors returned by the Manager's public API.
var (
	ErrQueueFull = errors.New("service: submission queue is full")
	ErrNotFound  = errors.New("service: no such job")
	ErrNotDone   = errors.New("service: job has no result yet")
	// ErrUnparsable wraps circuit parse failures so the HTTP layer can map
	// them to 422 Unprocessable Entity rather than a generic 400.
	ErrUnparsable = errors.New("service: circuit cannot be parsed")
)

// Config configures a Manager.
type Config struct {
	// Dir is the root of the job store (specs, circuits, checkpoints,
	// results). Required.
	Dir string
	// QueueSize bounds the submission queue; Submit fails with ErrQueueFull
	// beyond it. Default 256.
	QueueSize int
	// Workers is the number of jobs run concurrently (each job additionally
	// parallelizes internally per its spec's Workers knob). Default 1.
	Workers int
	// CheckpointEvery checkpoints a running session every that many
	// iterations (in addition to the checkpoint taken at graceful
	// shutdown). Default 8.
	CheckpointEvery int
	// DefaultTimeoutSec applies to jobs whose spec carries no timeout.
	// 0 means no default deadline.
	DefaultTimeoutSec float64
	// MaxResumeAttempts is how many recovery attempts a job gets without
	// ever reaching a successful checkpoint before the startup rescan
	// quarantines it as a poison job. Default 3.
	MaxResumeAttempts int
	// FS is the filesystem the job store runs on. Default faultfs.OS{};
	// chaos tests inject a faultfs.Injector here.
	FS faultfs.FS
	// RetrySleep sleeps between retries of transient store errors. Default
	// time.Sleep; tests inject a no-op to keep the suite fast.
	RetrySleep func(time.Duration)
	// Now supplies wall-clock time for latency metrics. The clock is
	// injected — this package may not read time.Now itself (alsraclint
	// determinism rule) — and may be nil, which disables step-latency
	// observation.
	Now func() time.Time
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// managerMetrics is the fixed instrument set exposed at /metrics.
type managerMetrics struct {
	jobsByState map[State]*obs.Gauge
	queueDepth  *obs.Gauge
	submitted   *obs.Counter
	iterations  *obs.Counter
	lacsApplied *obs.Counter
	checkpoints *obs.Counter
	resumes     *obs.Counter
	fallbacks   *obs.Counter
	retries     *obs.Counter
	quarantined *obs.Counter
	panics      *obs.Counter
	stepSeconds *obs.Histogram

	// Certified-mode instruments, labeled by exact-checker backend.
	certifyTotal   map[string]*obs.Counter
	certifySeconds map[string]*obs.Histogram
	certRejected   *obs.Counter
	satConflicts   *obs.Counter
}

// Manager owns the job table, the bounded submission queue and the worker
// pool. Construct with New, then call Run to process jobs; Run returns only
// after a graceful drain (every in-flight session checkpointed).
type Manager struct {
	cfg Config
	st  *store
	reg *obs.Registry
	met managerMetrics

	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job // insertion-ordered view of jobs (determinism: never range the map)
	nextID int
}

// New builds a Manager over cfg.Dir, recovering every persisted job: jobs
// in a terminal state are loaded for status/result serving, interrupted ones
// (queued or running at the time of death) are re-enqueued and will resume
// from their latest restorable checkpoint generation. A job that has already
// burned through MaxResumeAttempts recovery attempts without reaching a
// checkpoint is quarantined instead of re-enqueued — a poison circuit must
// not crash-loop the daemon forever — with its directory preserved on disk.
func New(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	if cfg.MaxResumeAttempts <= 0 {
		cfg.MaxResumeAttempts = 3
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if cfg.RetrySleep == nil {
		cfg.RetrySleep = time.Sleep
	}
	reg := obs.NewRegistry()
	met := managerMetrics{
		jobsByState: map[State]*obs.Gauge{},
		queueDepth:  reg.Gauge("alsrac_queue_depth", "jobs waiting for a worker"),
		submitted:   reg.Counter("alsrac_jobs_submitted_total", "jobs accepted by POST /jobs"),
		iterations:  reg.Counter("alsrac_iterations_total", "Algorithm 3 iterations stepped across all jobs"),
		lacsApplied: reg.Counter("alsrac_lacs_applied_total", "local approximate changes committed"),
		checkpoints: reg.Counter("alsrac_checkpoints_total", "session checkpoints written"),
		resumes:     reg.Counter("alsrac_resumes_total", "sessions restored from a checkpoint"),
		fallbacks:   reg.Counter("alsrac_checkpoint_fallback_total", "restores that skipped unusable checkpoint generations"),
		retries:     reg.Counter("alsrac_store_retries_total", "store operations retried on transient errors"),
		quarantined: reg.Counter("alsrac_jobs_quarantined_total", "poison jobs quarantined after repeated crash-loop recoveries"),
		panics:      reg.Counter("alsrac_worker_panics_total", "worker panics recovered and converted to job failures"),
		stepSeconds: reg.Histogram("alsrac_step_seconds", "session step latency in seconds", obs.LatencyBuckets()),

		certifyTotal:   map[string]*obs.Counter{},
		certifySeconds: map[string]*obs.Histogram{},
		certRejected:   reg.Counter("alsrac_certify_rejected_total", "winning LACs rejected by exact max-error certification"),
		satConflicts:   reg.Counter("alsrac_sat_conflicts_total", "CDCL conflicts spent across SAT certifications"),
	}
	for _, b := range []string{exact.BackendTrivial, exact.BackendExhaustive, exact.BackendSAT} {
		met.certifyTotal[b] = reg.Counter("alsrac_certify_total", "exact max-error certifications by backend", "backend", b)
		met.certifySeconds[b] = reg.Histogram("alsrac_certify_seconds", "exact certification latency in seconds", obs.LatencyBuckets(), "backend", b)
	}
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateQuarantined} {
		met.jobsByState[s] = reg.Gauge("alsrac_jobs", "jobs by lifecycle state", "state", string(s))
	}

	retry := &retrier{sleep: cfg.RetrySleep, onRetry: func() { met.retries.Inc() }}
	st, err := newStore(cfg.Dir, cfg.FS, retry)
	if err != nil {
		return nil, err
	}

	stored, err := st.loadAll()
	if err != nil {
		return nil, fmt.Errorf("service: recovering persisted jobs: %w", err)
	}
	m := &Manager{
		cfg:    cfg,
		st:     st,
		reg:    reg,
		met:    met,
		jobs:   map[string]*Job{},
		nextID: st.nextID(stored),
	}

	var pending []*Job
	for _, sj := range stored {
		job := &Job{
			ID:            sj.id,
			Spec:          sj.spec,
			state:         sj.state.State,
			errMsg:        sj.state.Error,
			timedOut:      sj.state.TimedOut,
			reason:        sj.state.Reason,
			finalErr:      sj.state.FinalErr,
			attempts:      sj.state.Attempts,
			hasCheckpoint: sj.hasCheckpoint,
		}
		if !job.state.terminal() {
			if job.attempts >= cfg.MaxResumeAttempts {
				// Poison job: every previous recovery died before reaching a
				// checkpoint. Park it terminally instead of crash-looping.
				job.mu.Lock()
				job.state = StateQuarantined
				job.publishLocked(Event{State: StateQuarantined})
				job.publishLocked(Event{Message: fmt.Sprintf(
					"quarantined after %d failed recovery attempts; job directory preserved", job.attempts)})
				job.mu.Unlock()
				_ = m.st.saveState(job.ID, persistedState{State: StateQuarantined, Attempts: job.attempts})
				m.met.quarantined.Inc()
				m.logf("job %s: quarantined after %d failed recovery attempts", job.ID, job.attempts)
			} else {
				// Count this recovery attempt before the job runs: if the
				// daemon dies again before the job's first successful
				// checkpoint, the next rescan sees the increment.
				job.attempts++
				job.state = StateQueued
				_ = m.st.saveState(job.ID, persistedState{State: StateQueued, Attempts: job.attempts})
				pending = append(pending, job)
			}
		}
		m.jobs[job.ID] = job
		m.order = append(m.order, job)
		m.met.jobsByState[job.state].Inc()
	}

	size := cfg.QueueSize
	if n := len(pending) + cfg.Workers; n > size {
		size = n
	}
	m.queue = make(chan *Job, size)
	for _, job := range pending {
		m.queue <- job
		if job.hasCheckpoint {
			m.logf("job %s: re-enqueued (attempt %d), will resume from checkpoint", job.ID, job.attempts)
		} else {
			m.logf("job %s: re-enqueued from scratch (attempt %d)", job.ID, job.attempts)
		}
	}
	m.met.queueDepth.Set(int64(len(pending)))
	return m, nil
}

// Registry exposes the manager's metrics for /metrics rendering.
func (m *Manager) Registry() *obs.Registry { return m.reg }

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Run processes jobs until ctx is cancelled, then drains: every worker
// checkpoints its in-flight session (the job stays non-terminal on disk and
// resumes on the next Run) before Run returns. No goroutine outlives Run.
func (m *Manager) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < m.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.workerLoop(ctx)
		}()
	}
	wg.Wait()
}

func (m *Manager) workerLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-m.queue:
			m.met.queueDepth.Dec()
			m.runJobGuarded(ctx, job)
		}
	}
}

// runJobGuarded isolates one job's execution: a panic anywhere in the job's
// session is recovered, its stack captured into the job's event log, and the
// job failed — the worker goroutine, its siblings and the daemon live on.
func (m *Manager) runJobGuarded(ctx context.Context, job *Job) {
	defer func() {
		if r := recover(); r != nil {
			m.met.panics.Inc()
			msg := fmt.Sprintf("worker panic: %v", r)
			job.mu.Lock()
			job.errMsg = msg
			job.publishLocked(Event{Message: msg, Error: string(debug.Stack())})
			job.mu.Unlock()
			_ = m.st.saveState(job.ID, persistedState{State: StateFailed, Error: msg})
			m.transition(job, StateFailed)
			m.logf("job %s: %s", job.ID, msg)
		}
	}()
	m.runJob(ctx, job)
}

// transition moves the job to state s (terminal states stick) and keeps the
// per-state gauges consistent.
func (m *Manager) transition(job *Job, s State) {
	job.mu.Lock()
	old := job.state
	if old == s || old.terminal() {
		job.mu.Unlock()
		return
	}
	job.state = s
	job.publishLocked(Event{State: s})
	job.mu.Unlock()
	m.met.jobsByState[old].Dec()
	m.met.jobsByState[s].Inc()
}

// Submit validates, persists and enqueues a new job. The circuit is parsed
// eagerly so malformed submissions fail here, not in a worker.
func (m *Manager) Submit(spec JobSpec, circuit []byte) (JobStatus, error) {
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, err
	}
	if spec.TimeoutSec == 0 {
		spec.TimeoutSec = m.cfg.DefaultTimeoutSec
	}
	if _, err := spec.Options(); err != nil {
		return JobStatus{}, err
	}
	g, err := ParseCircuit(spec.Format, circuit)
	if err != nil {
		return JobStatus{}, fmt.Errorf("%w: %w", ErrUnparsable, err)
	}

	m.mu.Lock()
	id := formatID(m.nextID)
	m.nextID++
	m.mu.Unlock()

	if err := m.st.createJob(id, spec, circuit); err != nil {
		_ = m.cfg.FS.RemoveAll(m.st.jobDir(id))
		return JobStatus{}, fmt.Errorf("service: persisting job %s: %w", id, err)
	}
	job := &Job{ID: id, Spec: spec, state: StateQueued, ands: g.NumAnds()}

	m.mu.Lock()
	m.jobs[id] = job
	m.order = append(m.order, job)
	m.mu.Unlock()

	select {
	case m.queue <- job:
	default:
		// Roll back: the job was never visible as accepted. Remove by
		// identity — a concurrent Submit may have appended after us.
		m.mu.Lock()
		delete(m.jobs, id)
		for i, j := range m.order {
			if j == job {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		_ = m.cfg.FS.RemoveAll(m.st.jobDir(id))
		return JobStatus{}, ErrQueueFull
	}
	m.met.submitted.Inc()
	m.met.queueDepth.Inc()
	m.met.jobsByState[StateQueued].Inc()
	return job.Status(false), nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Job(nil), m.order...)
}

// Cancel requests cancellation: queued jobs terminate immediately, running
// jobs at their next step boundary. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	job, ok := m.Get(id)
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return job.Status(false), nil
	}
	job.cancelRequested = true
	cancel := job.cancel
	wasQueued := job.state == StateQueued
	job.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if wasQueued {
		// The job may still sit in the queue channel; runJob skips
		// terminal jobs when it eventually pops it.
		m.finalizeCancelled(job)
	}
	return job.Status(false), nil
}

// ResultGraph returns the optimized circuit of a completed job, loading it
// from the store if the job finished in a previous process.
func (m *Manager) ResultGraph(id string) (*aig.Graph, error) {
	job, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	job.mu.Lock()
	state, g := job.state, job.resultGraph
	job.mu.Unlock()
	if state != StateDone {
		return nil, ErrNotDone
	}
	if g != nil {
		return g, nil
	}
	g, err := m.st.loadResult(id)
	if err != nil {
		return nil, fmt.Errorf("service: loading result of job %s: %w", id, err)
	}
	job.mu.Lock()
	job.resultGraph, job.hasResult = g, true
	job.mu.Unlock()
	return g, nil
}

// --- worker side -----------------------------------------------------------

// runJob drives one job's session to completion, deadline, cancellation or
// shutdown.
func (m *Manager) runJob(parent context.Context, job *Job) {
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return
	}
	if job.cancelRequested {
		job.mu.Unlock()
		m.finalizeCancelled(job)
		return
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if t := job.Spec.TimeoutSec; t > 0 {
		jobCtx, cancel = context.WithTimeout(parent, time.Duration(t*float64(time.Second)))
	} else {
		jobCtx, cancel = context.WithCancel(parent)
	}
	job.cancel = cancel
	attempts := job.attempts
	job.mu.Unlock()
	defer cancel()

	m.transition(job, StateRunning)
	_ = m.st.saveState(job.ID, persistedState{State: StateRunning, Attempts: attempts})

	sess, err := m.buildSession(job)
	if err != nil {
		m.finalizeFailed(job, err)
		return
	}

	countdown := m.cfg.CheckpointEvery
	for {
		var t0 time.Time
		if m.cfg.Now != nil {
			t0 = m.cfg.Now()
		}
		i0 := sess.Iterations()
		ev, err := sess.Step(jobCtx)
		if m.cfg.Now != nil {
			m.met.stepSeconds.Observe(m.cfg.Now().Sub(t0).Seconds())
		}
		if err != nil {
			m.handleInterrupt(parent, jobCtx, job, sess)
			return
		}
		// A terminating step can still commit an iteration (threshold hit),
		// so count by session delta rather than by event kind.
		if d := sess.Iterations() - i0; d > 0 {
			m.met.iterations.Add(uint64(d))
		}
		if ev.Applied {
			m.met.lacsApplied.Inc()
		}
		if ev.Kind == core.EventCertRejected {
			m.met.certRejected.Inc()
		}
		job.recordStep(ev, sess)
		if ev.Done {
			m.finalizeDone(job, sess, false)
			return
		}
		countdown--
		if countdown <= 0 {
			countdown = m.cfg.CheckpointEvery
			if err := m.checkpoint(job, sess); err != nil {
				m.logf("job %s: checkpoint failed: %v", job.ID, err)
			}
		}
	}
}

// buildSession restores the job's session from its newest checkpoint
// generation when one exists. A corrupt generation (torn write, bit rot) is
// skipped in favour of the next-newest — the fallback is counted and noted in
// the job's event log — and when no generation is restorable the session is
// rebuilt from the original circuit (determinism guarantees the rerun
// converges to the same result). An options mismatch stops the scan early:
// every generation of a job shares its configuration, so older ones cannot
// match either.
func (m *Manager) buildSession(job *Job) (*core.Session, error) {
	opts, err := job.Spec.Options()
	if err != nil {
		return nil, err
	}
	// Certified-mode observability: latency comes from the injected clock
	// (zero, and unobserved, when the deployment runs without one) and the
	// counters attribute each certification to the backend that decided it.
	opts.CertNow = m.cfg.Now
	opts.CertObserve = func(backend string, secs float64, conflicts int64) {
		if c, ok := m.met.certifyTotal[backend]; ok {
			c.Inc()
		}
		if h, ok := m.met.certifySeconds[backend]; ok && m.cfg.Now != nil {
			h.Observe(secs)
		}
		if conflicts > 0 {
			m.met.satConflicts.Add(uint64(conflicts))
		}
	}
	gens := m.st.checkpointGens(job.ID)
	for i, path := range gens {
		f, err := m.st.fs.Open(path)
		if err != nil {
			m.logf("job %s: cannot open checkpoint %s: %v", job.ID, filepath.Base(path), err)
			continue
		}
		sess, rerr := core.Restore(f, opts)
		f.Close()
		if rerr == nil {
			if i > 0 {
				m.met.fallbacks.Inc()
				job.note(fmt.Sprintf("checkpoint_fallback: restored %s after skipping %d unusable newer generation(s)",
					filepath.Base(path), i))
			}
			m.met.resumes.Inc()
			m.logf("job %s: resumed from %s at iteration %d", job.ID, filepath.Base(path), sess.Iterations())
			return sess, nil
		}
		m.logf("job %s: checkpoint %s unusable: %v", job.ID, filepath.Base(path), rerr)
		if errors.Is(rerr, core.ErrMismatch) {
			break
		}
	}
	if len(gens) > 0 {
		m.met.fallbacks.Inc()
		job.note(fmt.Sprintf("checkpoint_fallback: all %d generation(s) unusable, restarting from original circuit", len(gens)))
	}
	circuit, err := m.st.loadCircuit(job.ID)
	if err != nil {
		return nil, fmt.Errorf("loading circuit: %w", err)
	}
	g, err := ParseCircuit(job.Spec.Format, circuit)
	if err != nil {
		return nil, fmt.Errorf("parsing circuit: %w", err)
	}
	return core.NewSession(g, opts), nil
}

// checkpoint persists the session state atomically as a new generation. The
// first successful checkpoint of a recovered job proves it can make durable
// progress, so the poison-job attempt counter resets.
func (m *Manager) checkpoint(job *Job, sess *core.Session) error {
	err := m.st.saveCheckpoint(job.ID, sess.Snapshot)
	if err != nil {
		return err
	}
	job.mu.Lock()
	job.hasCheckpoint = true
	resetAttempts := job.attempts != 0
	job.attempts = 0
	job.mu.Unlock()
	if resetAttempts {
		_ = m.st.saveState(job.ID, persistedState{State: StateRunning})
	}
	m.met.checkpoints.Inc()
	return nil
}

// handleInterrupt classifies a Step error: per-job cancellation, per-job
// deadline (the job completes with its best-so-far result), or manager
// shutdown (the session is checkpointed and the job left resumable).
func (m *Manager) handleInterrupt(parent, jobCtx context.Context, job *Job, sess *core.Session) {
	job.mu.Lock()
	cancelled := job.cancelRequested
	job.mu.Unlock()
	switch {
	case cancelled:
		m.finalizeCancelled(job)
	case errors.Is(jobCtx.Err(), context.DeadlineExceeded) && parent.Err() == nil:
		m.logf("job %s: deadline reached, finishing with best-so-far result", job.ID)
		m.finalizeDone(job, sess, true)
	default:
		// Graceful shutdown: checkpoint and leave the job resumable.
		if err := m.checkpoint(job, sess); err != nil {
			m.logf("job %s: shutdown checkpoint failed: %v", job.ID, err)
		} else {
			m.logf("job %s: checkpointed at iteration %d for shutdown", job.ID, sess.Iterations())
		}
		m.transition(job, StateQueued)
		_ = m.st.saveState(job.ID, persistedState{State: StateQueued})
	}
}

func (m *Manager) finalizeDone(job *Job, sess *core.Session, timedOut bool) {
	res := sess.Result()
	if err := m.st.saveResult(job.ID, res.Graph); err != nil {
		m.finalizeFailed(job, fmt.Errorf("writing result: %w", err))
		return
	}
	reason := sess.Reason()
	if timedOut {
		reason = "deadline"
	}
	job.mu.Lock()
	job.resultGraph, job.hasResult = res.Graph, true
	job.finalErr = res.FinalError
	job.iterations, job.applied = res.Iterations, res.Applied
	job.ands = res.Graph.NumAnds()
	job.history = res.History
	job.timedOut = timedOut
	job.reason = reason
	job.mu.Unlock()
	_ = m.st.saveState(job.ID, persistedState{
		State: StateDone, TimedOut: timedOut, Reason: reason, FinalErr: res.FinalError,
	})
	m.transition(job, StateDone)
	m.logf("job %s: done (%d iterations, %d LACs, error %.6g%s)",
		job.ID, res.Iterations, res.Applied, res.FinalError,
		map[bool]string{true: ", deadline", false: ""}[timedOut])
}

func (m *Manager) finalizeFailed(job *Job, err error) {
	job.mu.Lock()
	job.errMsg = err.Error()
	job.mu.Unlock()
	_ = m.st.saveState(job.ID, persistedState{State: StateFailed, Error: err.Error()})
	m.transition(job, StateFailed)
	m.logf("job %s: failed: %v", job.ID, err)
}

func (m *Manager) finalizeCancelled(job *Job) {
	_ = m.st.saveState(job.ID, persistedState{State: StateCancelled})
	m.transition(job, StateCancelled)
	m.logf("job %s: cancelled", job.ID)
}
