package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/aig"
	"repro/internal/core"
	"repro/internal/obs"
)

// Sentinel errors returned by the Manager's public API.
var (
	ErrQueueFull = errors.New("service: submission queue is full")
	ErrNotFound  = errors.New("service: no such job")
	ErrNotDone   = errors.New("service: job has no result yet")
)

// Config configures a Manager.
type Config struct {
	// Dir is the root of the job store (specs, circuits, checkpoints,
	// results). Required.
	Dir string
	// QueueSize bounds the submission queue; Submit fails with ErrQueueFull
	// beyond it. Default 256.
	QueueSize int
	// Workers is the number of jobs run concurrently (each job additionally
	// parallelizes internally per its spec's Workers knob). Default 1.
	Workers int
	// CheckpointEvery checkpoints a running session every that many
	// iterations (in addition to the checkpoint taken at graceful
	// shutdown). Default 8.
	CheckpointEvery int
	// DefaultTimeoutSec applies to jobs whose spec carries no timeout.
	// 0 means no default deadline.
	DefaultTimeoutSec float64
	// Now supplies wall-clock time for latency metrics. The clock is
	// injected — this package may not read time.Now itself (alsraclint
	// determinism rule) — and may be nil, which disables step-latency
	// observation.
	Now func() time.Time
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// managerMetrics is the fixed instrument set exposed at /metrics.
type managerMetrics struct {
	jobsByState map[State]*obs.Gauge
	queueDepth  *obs.Gauge
	submitted   *obs.Counter
	iterations  *obs.Counter
	lacsApplied *obs.Counter
	checkpoints *obs.Counter
	resumes     *obs.Counter
	stepSeconds *obs.Histogram
}

// Manager owns the job table, the bounded submission queue and the worker
// pool. Construct with New, then call Run to process jobs; Run returns only
// after a graceful drain (every in-flight session checkpointed).
type Manager struct {
	cfg Config
	st  *store
	reg *obs.Registry
	met managerMetrics

	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job // insertion-ordered view of jobs (determinism: never range the map)
	nextID int
}

// New builds a Manager over cfg.Dir, recovering every persisted job: jobs
// in a terminal state are loaded for status/result serving, interrupted ones
// (queued or running at the time of death) are re-enqueued and will resume
// from their latest checkpoint.
func New(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	st, err := newStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	met := managerMetrics{
		jobsByState: map[State]*obs.Gauge{},
		queueDepth:  reg.Gauge("alsrac_queue_depth", "jobs waiting for a worker"),
		submitted:   reg.Counter("alsrac_jobs_submitted_total", "jobs accepted by POST /jobs"),
		iterations:  reg.Counter("alsrac_iterations_total", "Algorithm 3 iterations stepped across all jobs"),
		lacsApplied: reg.Counter("alsrac_lacs_applied_total", "local approximate changes committed"),
		checkpoints: reg.Counter("alsrac_checkpoints_total", "session checkpoints written"),
		resumes:     reg.Counter("alsrac_resumes_total", "sessions restored from a checkpoint"),
		stepSeconds: reg.Histogram("alsrac_step_seconds", "session step latency in seconds", obs.LatencyBuckets()),
	}
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		met.jobsByState[s] = reg.Gauge("alsrac_jobs", "jobs by lifecycle state", "state", string(s))
	}

	stored, err := st.loadAll()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		st:     st,
		reg:    reg,
		met:    met,
		jobs:   map[string]*Job{},
		nextID: st.nextID(stored),
	}

	var pending []*Job
	for _, sj := range stored {
		job := &Job{
			ID:            sj.id,
			Spec:          sj.spec,
			state:         sj.state.State,
			errMsg:        sj.state.Error,
			timedOut:      sj.state.TimedOut,
			reason:        sj.state.Reason,
			finalErr:      sj.state.FinalErr,
			hasCheckpoint: sj.hasCheckpoint,
		}
		if !job.state.terminal() {
			job.state = StateQueued
			pending = append(pending, job)
		}
		m.jobs[job.ID] = job
		m.order = append(m.order, job)
		m.met.jobsByState[job.state].Inc()
	}

	size := cfg.QueueSize
	if n := len(pending) + cfg.Workers; n > size {
		size = n
	}
	m.queue = make(chan *Job, size)
	for _, job := range pending {
		m.queue <- job
		if job.hasCheckpoint {
			m.logf("job %s: re-enqueued, will resume from checkpoint", job.ID)
		} else {
			m.logf("job %s: re-enqueued from scratch", job.ID)
		}
	}
	m.met.queueDepth.Set(int64(len(pending)))
	return m, nil
}

// Registry exposes the manager's metrics for /metrics rendering.
func (m *Manager) Registry() *obs.Registry { return m.reg }

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Run processes jobs until ctx is cancelled, then drains: every worker
// checkpoints its in-flight session (the job stays non-terminal on disk and
// resumes on the next Run) before Run returns. No goroutine outlives Run.
func (m *Manager) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < m.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.workerLoop(ctx)
		}()
	}
	wg.Wait()
}

func (m *Manager) workerLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-m.queue:
			m.met.queueDepth.Dec()
			m.runJob(ctx, job)
		}
	}
}

// transition moves the job to state s (terminal states stick) and keeps the
// per-state gauges consistent.
func (m *Manager) transition(job *Job, s State) {
	job.mu.Lock()
	old := job.state
	if old == s || old.terminal() {
		job.mu.Unlock()
		return
	}
	job.state = s
	job.publishLocked(Event{State: s})
	job.mu.Unlock()
	m.met.jobsByState[old].Dec()
	m.met.jobsByState[s].Inc()
}

// Submit validates, persists and enqueues a new job. The circuit is parsed
// eagerly so malformed submissions fail here, not in a worker.
func (m *Manager) Submit(spec JobSpec, circuit []byte) (JobStatus, error) {
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, err
	}
	if spec.TimeoutSec == 0 {
		spec.TimeoutSec = m.cfg.DefaultTimeoutSec
	}
	if _, err := spec.Options(); err != nil {
		return JobStatus{}, err
	}
	g, err := ParseCircuit(spec.Format, circuit)
	if err != nil {
		return JobStatus{}, fmt.Errorf("parsing circuit: %w", err)
	}

	m.mu.Lock()
	id := formatID(m.nextID)
	m.nextID++
	m.mu.Unlock()

	if err := m.st.createJob(id, spec, circuit); err != nil {
		return JobStatus{}, err
	}
	job := &Job{ID: id, Spec: spec, state: StateQueued, ands: g.NumAnds()}

	m.mu.Lock()
	m.jobs[id] = job
	m.order = append(m.order, job)
	m.mu.Unlock()

	select {
	case m.queue <- job:
	default:
		// Roll back: the job was never visible as accepted. Remove by
		// identity — a concurrent Submit may have appended after us.
		m.mu.Lock()
		delete(m.jobs, id)
		for i, j := range m.order {
			if j == job {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		os.RemoveAll(m.st.jobDir(id))
		return JobStatus{}, ErrQueueFull
	}
	m.met.submitted.Inc()
	m.met.queueDepth.Inc()
	m.met.jobsByState[StateQueued].Inc()
	return job.Status(false), nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Job(nil), m.order...)
}

// Cancel requests cancellation: queued jobs terminate immediately, running
// jobs at their next step boundary. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	job, ok := m.Get(id)
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return job.Status(false), nil
	}
	job.cancelRequested = true
	cancel := job.cancel
	wasQueued := job.state == StateQueued
	job.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if wasQueued {
		// The job may still sit in the queue channel; runJob skips
		// terminal jobs when it eventually pops it.
		m.finalizeCancelled(job)
	}
	return job.Status(false), nil
}

// ResultGraph returns the optimized circuit of a completed job, loading it
// from the store if the job finished in a previous process.
func (m *Manager) ResultGraph(id string) (*aig.Graph, error) {
	job, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	job.mu.Lock()
	state, g := job.state, job.resultGraph
	job.mu.Unlock()
	if state != StateDone {
		return nil, ErrNotDone
	}
	if g != nil {
		return g, nil
	}
	g, err := m.st.loadResult(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	job.resultGraph, job.hasResult = g, true
	job.mu.Unlock()
	return g, nil
}

// --- worker side -----------------------------------------------------------

// runJob drives one job's session to completion, deadline, cancellation or
// shutdown.
func (m *Manager) runJob(parent context.Context, job *Job) {
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return
	}
	if job.cancelRequested {
		job.mu.Unlock()
		m.finalizeCancelled(job)
		return
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if t := job.Spec.TimeoutSec; t > 0 {
		jobCtx, cancel = context.WithTimeout(parent, time.Duration(t*float64(time.Second)))
	} else {
		jobCtx, cancel = context.WithCancel(parent)
	}
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()

	m.transition(job, StateRunning)
	_ = m.st.saveState(job.ID, persistedState{State: StateRunning})

	sess, err := m.buildSession(job)
	if err != nil {
		m.finalizeFailed(job, err)
		return
	}

	countdown := m.cfg.CheckpointEvery
	for {
		var t0 time.Time
		if m.cfg.Now != nil {
			t0 = m.cfg.Now()
		}
		i0 := sess.Iterations()
		ev, err := sess.Step(jobCtx)
		if m.cfg.Now != nil {
			m.met.stepSeconds.Observe(m.cfg.Now().Sub(t0).Seconds())
		}
		if err != nil {
			m.handleInterrupt(parent, jobCtx, job, sess)
			return
		}
		// A terminating step can still commit an iteration (threshold hit),
		// so count by session delta rather than by event kind.
		if d := sess.Iterations() - i0; d > 0 {
			m.met.iterations.Add(uint64(d))
		}
		if ev.Applied {
			m.met.lacsApplied.Inc()
		}
		job.recordStep(ev, sess)
		if ev.Done {
			m.finalizeDone(job, sess, false)
			return
		}
		countdown--
		if countdown <= 0 {
			countdown = m.cfg.CheckpointEvery
			if err := m.checkpoint(job, sess); err != nil {
				m.logf("job %s: checkpoint failed: %v", job.ID, err)
			}
		}
	}
}

// buildSession restores the job's session from its checkpoint when one
// exists, falling back to a fresh session from the original circuit (a
// corrupt checkpoint is logged and discarded, never fatal: determinism
// guarantees the rerun converges to the same result).
func (m *Manager) buildSession(job *Job) (*core.Session, error) {
	opts, err := job.Spec.Options()
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	tryCkpt := job.hasCheckpoint
	job.mu.Unlock()
	if tryCkpt {
		f, err := os.Open(m.st.checkpointPath(job.ID))
		if err == nil {
			sess, rerr := core.Restore(f, opts)
			f.Close()
			if rerr == nil {
				m.met.resumes.Inc()
				m.logf("job %s: resumed from checkpoint at iteration %d", job.ID, sess.Iterations())
				return sess, nil
			}
			m.logf("job %s: discarding unusable checkpoint: %v", job.ID, rerr)
		}
	}
	circuit, err := m.st.loadCircuit(job.ID)
	if err != nil {
		return nil, fmt.Errorf("loading circuit: %w", err)
	}
	g, err := ParseCircuit(job.Spec.Format, circuit)
	if err != nil {
		return nil, fmt.Errorf("parsing circuit: %w", err)
	}
	return core.NewSession(g, opts), nil
}

// checkpoint persists the session state atomically.
func (m *Manager) checkpoint(job *Job, sess *core.Session) error {
	err := m.st.saveCheckpoint(job.ID, func(w *os.File) error { return sess.Snapshot(w) })
	if err != nil {
		return err
	}
	job.mu.Lock()
	job.hasCheckpoint = true
	job.mu.Unlock()
	m.met.checkpoints.Inc()
	return nil
}

// handleInterrupt classifies a Step error: per-job cancellation, per-job
// deadline (the job completes with its best-so-far result), or manager
// shutdown (the session is checkpointed and the job left resumable).
func (m *Manager) handleInterrupt(parent, jobCtx context.Context, job *Job, sess *core.Session) {
	job.mu.Lock()
	cancelled := job.cancelRequested
	job.mu.Unlock()
	switch {
	case cancelled:
		m.finalizeCancelled(job)
	case errors.Is(jobCtx.Err(), context.DeadlineExceeded) && parent.Err() == nil:
		m.logf("job %s: deadline reached, finishing with best-so-far result", job.ID)
		m.finalizeDone(job, sess, true)
	default:
		// Graceful shutdown: checkpoint and leave the job resumable.
		if err := m.checkpoint(job, sess); err != nil {
			m.logf("job %s: shutdown checkpoint failed: %v", job.ID, err)
		} else {
			m.logf("job %s: checkpointed at iteration %d for shutdown", job.ID, sess.Iterations())
		}
		m.transition(job, StateQueued)
		_ = m.st.saveState(job.ID, persistedState{State: StateQueued})
	}
}

func (m *Manager) finalizeDone(job *Job, sess *core.Session, timedOut bool) {
	res := sess.Result()
	if err := m.st.saveResult(job.ID, res.Graph); err != nil {
		m.finalizeFailed(job, fmt.Errorf("writing result: %w", err))
		return
	}
	reason := sess.Reason()
	if timedOut {
		reason = "deadline"
	}
	job.mu.Lock()
	job.resultGraph, job.hasResult = res.Graph, true
	job.finalErr = res.FinalError
	job.iterations, job.applied = res.Iterations, res.Applied
	job.ands = res.Graph.NumAnds()
	job.history = res.History
	job.timedOut = timedOut
	job.reason = reason
	job.mu.Unlock()
	_ = m.st.saveState(job.ID, persistedState{
		State: StateDone, TimedOut: timedOut, Reason: reason, FinalErr: res.FinalError,
	})
	m.transition(job, StateDone)
	m.logf("job %s: done (%d iterations, %d LACs, error %.6g%s)",
		job.ID, res.Iterations, res.Applied, res.FinalError,
		map[bool]string{true: ", deadline", false: ""}[timedOut])
}

func (m *Manager) finalizeFailed(job *Job, err error) {
	job.mu.Lock()
	job.errMsg = err.Error()
	job.mu.Unlock()
	_ = m.st.saveState(job.ID, persistedState{State: StateFailed, Error: err.Error()})
	m.transition(job, StateFailed)
	m.logf("job %s: failed: %v", job.ID, err)
}

func (m *Manager) finalizeCancelled(job *Job) {
	_ = m.st.saveState(job.ID, persistedState{State: StateCancelled})
	m.transition(job, StateCancelled)
	m.logf("job %s: cancelled", job.ID)
}
