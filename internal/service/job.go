package service

import (
	"context"
	"sync"

	"repro/internal/aig"
	"repro/internal/core"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: accepted (or re-enqueued after a restart) and waiting
	// for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is stepping the job's session.
	StateRunning State = "running"
	// StateDone: the flow terminated (or hit its deadline with a usable
	// best-so-far result); the result circuit is available.
	StateDone State = "done"
	// StateFailed: the job cannot make progress (bad circuit, I/O error,
	// worker panic — the Error field says which).
	StateFailed State = "failed"
	// StateCancelled: terminated by DELETE /jobs/{id}.
	StateCancelled State = "cancelled"
	// StateQuarantined: the job crash-looped through MaxResumeAttempts
	// recovery attempts without ever reaching a checkpoint, so the startup
	// rescan refuses to re-enqueue it again. Terminal; the job directory is
	// preserved on disk for inspection.
	StateQuarantined State = "quarantined"
)

// Terminal reports whether no further transitions can happen. Exported for
// the cluster coordinator, which shares the lifecycle vocabulary.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateQuarantined
}

// terminal is the historical unexported spelling.
func (s State) terminal() bool { return s.Terminal() }

// Event is one NDJSON progress record: a state transition, one session step,
// or an operational note (checkpoint fallback, quarantine, captured panic).
type Event struct {
	Job   string      `json:"job"`
	Seq   int         `json:"seq"`
	State State       `json:"state,omitempty"`
	Step  *core.Event `json:"step,omitempty"`
	// Message carries operational notes such as "checkpoint_fallback ...".
	Message string `json:"message,omitempty"`
	// Error carries failure detail — for a worker panic, the captured stack.
	Error string `json:"error,omitempty"`
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID           string            `json:"id"`
	Spec         JobSpec           `json:"spec"`
	State        State             `json:"state"`
	Error        string            `json:"error,omitempty"`
	TimedOut     bool              `json:"timed_out,omitempty"`
	Reason       string            `json:"reason,omitempty"`
	Attempts     int               `json:"attempts,omitempty"`
	Iterations   int               `json:"iterations"`
	Applied      int               `json:"applied"`
	Ands         int               `json:"ands"`
	CurrentError float64           `json:"current_error"`
	FinalError   float64           `json:"final_error,omitempty"`
	History      []core.IterRecord `json:"history,omitempty"`
}

// subscriber is one NDJSON event stream client.
type subscriber struct {
	ch chan Event
}

// Job is one synthesis job. All mutable fields are guarded by mu; the
// session itself is only ever touched by the single worker that owns the
// running job.
type Job struct {
	ID   string
	Spec JobSpec

	mu       sync.Mutex
	state    State
	errMsg   string
	timedOut bool
	reason   string
	attempts int // resume attempts without a successful checkpoint

	iterations    int
	applied       int
	ands          int
	curErr        float64
	finalErr      float64
	history       []core.IterRecord
	resultGraph   *aig.Graph // in-memory result when completed in this process
	hasResult     bool
	hasCheckpoint bool // a checkpoint file exists on disk (resume candidate)

	events []Event
	subs   []*subscriber

	cancelRequested bool
	cancel          context.CancelFunc // set while running
}

// Status returns a consistent snapshot. History is copied so callers can
// serialize it without holding the lock.
func (j *Job) Status(withHistory bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:           j.ID,
		Spec:         j.Spec,
		State:        j.state,
		Error:        j.errMsg,
		TimedOut:     j.timedOut,
		Reason:       j.reason,
		Attempts:     j.attempts,
		Iterations:   j.iterations,
		Applied:      j.applied,
		Ands:         j.ands,
		CurrentError: j.curErr,
		FinalError:   j.finalErr,
	}
	if withHistory {
		st.History = append([]core.IterRecord(nil), j.history...)
	}
	return st
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// publishLocked appends an event to the log and fans it out to subscribers.
// Slow subscribers lose events rather than stalling the worker (their
// buffered channel fills); the NDJSON handler replays from the log by
// sequence number, so a lagging client can reconnect with ?from=. Callers
// must hold j.mu.
func (j *Job) publishLocked(ev Event) {
	ev.Job = j.ID
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for _, s := range j.subs {
		select {
		case s.ch <- ev:
		default:
		}
	}
	if ev.State.terminal() {
		for _, s := range j.subs {
			close(s.ch)
		}
		j.subs = nil
	}
}

// note publishes an operational event (checkpoint fallback, quarantine
// reason, retry exhaustion) to the job's event log.
func (j *Job) note(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(Event{Message: msg})
}

// recordStep mirrors one session step into the job's public fields and
// publishes it.
func (j *Job) recordStep(ev core.Event, s *core.Session) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.iterations = s.Iterations()
	j.applied = s.Applied()
	j.ands = ev.Ands
	j.curErr = ev.Err
	if ev.Reason != "" {
		j.reason = ev.Reason
	}
	j.history = s.History()
	step := ev
	j.publishLocked(Event{Step: &step})
}

// Subscribe registers an event-stream client: it returns a replay of the
// event log from seq `from` onward, a channel for live events, and an
// unsubscribe function. On a terminal job the channel is already closed.
func (j *Job) Subscribe(from int) ([]Event, <-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	replay := append([]Event(nil), j.events[from:]...)
	ch := make(chan Event, 256)
	if j.state.terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	sub := &subscriber{ch: ch}
	j.subs = append(j.subs, sub)
	unsub := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, s := range j.subs {
			if s == sub {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(s.ch)
				return
			}
		}
	}
	return replay, ch, unsub
}
