package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/aiger"
	"repro/internal/bench"
)

// BenchmarkServiceThroughput measures end-to-end job latency through the
// whole engine — submit, persist, queue, session run, result write — for a
// small circuit, so the number is dominated by per-job overhead rather than
// synthesis time. One op = one job driven to completion.
func BenchmarkServiceThroughput(b *testing.B) {
	var circuit bytes.Buffer
	if err := aiger.Write(&circuit, bench.RCA(8), "aag"); err != nil {
		b.Fatal(err)
	}
	spec := JobSpec{Metric: "er", Threshold: 0.05, Seed: 3, EvalPatterns: 1024, Workers: 1}

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, err := New(Config{
				Dir:       b.TempDir(),
				Workers:   workers,
				QueueSize: b.N + workers,
				Now:       time.Now,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Run(ctx)
			}()

			b.ResetTimer()
			ids := make([]string, b.N)
			for i := 0; i < b.N; i++ {
				st, err := m.Submit(spec, circuit.Bytes())
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = st.ID
			}
			for _, id := range ids {
				job, _ := m.Get(id)
				for !job.State().terminal() {
					time.Sleep(100 * time.Microsecond)
				}
				if s := job.State(); s != StateDone {
					b.Fatalf("job %s ended %s", id, s)
				}
			}
			b.StopTimer()
			cancel()
			wg.Wait()
		})
	}
}
