package service

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
)

func plainStore(t *testing.T, fsys faultfs.FS) *store {
	t.Helper()
	st, err := newStore(t.TempDir(), fsys, &retrier{sleep: noSleep})
	if err != nil {
		t.Fatalf("newStore: %v", err)
	}
	return st
}

// TestWriteAtomicCrashNeverHalfVisible: for a crash at EVERY operation in the
// atomic-write sequence (create, write, sync, close, rename, dir sync), the
// target file afterwards holds either the complete old content or the
// complete new content — never a prefix — and the startup sweep leaves no
// temp residue behind.
func TestWriteAtomicCrashNeverHalfVisible(t *testing.T) {
	old := []byte(`{"state":"queued"}`)
	next := []byte(`{"state":"running","attempts":1}`)
	steps := []faultfs.Fault{
		{Op: faultfs.OpCreateTemp, N: 1, Crash: true},
		{Op: faultfs.OpWrite, PathSubstr: ".tmp-", N: 1, TornBytes: 5, Crash: true},
		{Op: faultfs.OpSync, PathSubstr: ".tmp-", N: 1, Crash: true},
		{Op: faultfs.OpClose, PathSubstr: ".tmp-", N: 1, Crash: true},
		{Op: faultfs.OpRename, PathSubstr: "state.json", N: 1, Crash: true},
		{Op: faultfs.OpSyncDir, N: 1, Crash: true},
	}
	for _, fault := range steps {
		t.Run(string(fault.Op), func(t *testing.T) {
			dir := t.TempDir()
			jd := filepath.Join(dir, "j000001")
			if err := os.MkdirAll(jd, 0o755); err != nil {
				t.Fatal(err)
			}
			target := filepath.Join(jd, "state.json")
			if err := os.WriteFile(target, old, 0o644); err != nil {
				t.Fatal(err)
			}

			inj := faultfs.NewInjector(faultfs.OS{}, fault)
			st := &store{dir: dir, fs: inj, retry: &retrier{sleep: noSleep}}
			err := st.writeAtomic(target, next)
			// Rename and dir-sync crashes may leave the NEW content visible
			// (the rename itself can have completed); everything earlier must
			// leave the OLD content. Either way: a complete version.
			got, rerr := os.ReadFile(target)
			if rerr != nil {
				t.Fatalf("target vanished after crash at %s: %v", fault.Op, rerr)
			}
			if string(got) != string(old) && string(got) != string(next) {
				t.Fatalf("half-visible artifact after crash at %s: %q", fault.Op, got)
			}
			if fault.Op != faultfs.OpSyncDir && err == nil {
				t.Fatalf("crash at %s reported no error", fault.Op)
			}

			// A fresh store's startup scan sweeps any stranded temp file.
			clean := plainStore(t, faultfs.OS{})
			clean.dir = dir
			if _, err := clean.loadAll(); err != nil {
				t.Fatalf("loadAll after crash: %v", err)
			}
			entries, _ := os.ReadDir(jd)
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), ".tmp-") {
					t.Fatalf("temp residue %s survived the startup sweep", e.Name())
				}
			}
		})
	}
}

// TestWriteAtomicRetriesTransient: a transient errno mid-sequence is retried
// with a fresh temp file and succeeds; the sleep hook observes the backoff.
func TestWriteAtomicRetriesTransient(t *testing.T) {
	var slept []time.Duration
	retried := 0
	inj := faultfs.NewInjector(faultfs.OS{},
		faultfs.Fault{Op: faultfs.OpSync, PathSubstr: ".tmp-", N: 1, Err: syscall.ENOSPC},
	)
	st, err := newStore(t.TempDir(), inj, &retrier{
		sleep:   func(d time.Duration) { slept = append(slept, d) },
		onRetry: func() { retried++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(st.dir, "state.json")
	if err := st.writeAtomic(target, []byte("payload")); err != nil {
		t.Fatalf("writeAtomic did not recover from transient ENOSPC: %v", err)
	}
	if retried != 1 || len(slept) != 1 {
		t.Fatalf("retried %d times with %d sleeps, want 1 and 1", retried, len(slept))
	}
	if slept[0] <= 0 || slept[0] > retryMaxDelay {
		t.Fatalf("backoff %v outside (0, %v]", slept[0], retryMaxDelay)
	}
	if got, _ := os.ReadFile(target); string(got) != "payload" {
		t.Fatalf("target content %q after retry", got)
	}
}

// TestWriteAtomicFailsFastOnPermanent: a non-transient errno is not retried.
func TestWriteAtomicFailsFastOnPermanent(t *testing.T) {
	retried := 0
	inj := faultfs.NewInjector(faultfs.OS{},
		faultfs.Fault{Op: faultfs.OpSync, PathSubstr: ".tmp-", N: 1, Err: syscall.EACCES},
	)
	st, err := newStore(t.TempDir(), inj, &retrier{sleep: noSleep, onRetry: func() { retried++ }})
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(st.dir, "state.json")
	if err := st.writeAtomic(target, []byte("x")); err == nil {
		t.Fatal("permanent EACCES reported success")
	}
	if retried != 0 {
		t.Fatalf("permanent error retried %d times", retried)
	}
	if _, err := os.Stat(target); err == nil {
		t.Fatal("failed write left a visible target")
	}
}

// TestRetryGivesUpAfterBudget: a fault on every attempt exhausts the retry
// budget and surfaces the final transient error.
func TestRetryGivesUpAfterBudget(t *testing.T) {
	calls, retries := 0, 0
	r := &retrier{sleep: noSleep, onRetry: func() { retries++ }}
	err := r.do("k", func() error {
		calls++
		return fmt.Errorf("wrapped: %w", syscall.EAGAIN)
	})
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if calls != retryAttempts || retries != retryAttempts-1 {
		t.Fatalf("calls %d / retries %d, want %d / %d", calls, retries, retryAttempts, retryAttempts-1)
	}
}

// TestBackoffDelayDeterministicCappedJittered pins the backoff contract:
// same (key, attempt) → same delay; each delay sits in [d/2, d] for the
// doubling window d; the window caps at retryMaxDelay.
func TestBackoffDelayDeterministicCappedJittered(t *testing.T) {
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := backoffDelay("some/path", attempt)
		d2 := backoffDelay("some/path", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		window := retryBaseDelay << (attempt - 1)
		if window <= 0 || window > retryMaxDelay {
			window = retryMaxDelay
		}
		if d1 < window/2 || d1 > window {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, window/2, window)
		}
	}
	if backoffDelay("a", 1) == backoffDelay("b", 1) &&
		backoffDelay("a", 2) == backoffDelay("b", 2) &&
		backoffDelay("a", 3) == backoffDelay("b", 3) {
		t.Fatal("jitter ignores the key: concurrent retries would stampede in lockstep")
	}
}

// TestCheckpointGenerationsRotateAndPrune: successive checkpoints produce
// ascending generations, only the newest keepCheckpoints survive, and the
// listing is newest-first with a legacy unnumbered file sorted last.
func TestCheckpointGenerationsRotateAndPrune(t *testing.T) {
	st := plainStore(t, faultfs.OS{})
	const id = "j000001"
	if err := st.fs.MkdirAll(st.jobDir(id), 0o755); err != nil {
		t.Fatal(err)
	}
	// A legacy pre-generation checkpoint from an older daemon.
	if err := os.WriteFile(filepath.Join(st.jobDir(id), "checkpoint"), []byte("legacy"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		payload := fmt.Sprintf("gen%d", i)
		err := st.saveCheckpoint(id, func(w io.Writer) error {
			_, err := w.Write([]byte(payload))
			return err
		})
		if err != nil {
			t.Fatalf("saveCheckpoint %d: %v", i, err)
		}
	}
	gens := st.checkpointGens(id)
	wantOrder := []string{"checkpoint.000005", "checkpoint.000004", "checkpoint.000003"}
	if len(gens) != len(wantOrder) {
		t.Fatalf("%d generations survive, want %d (%v)", len(gens), len(wantOrder), gens)
	}
	for i, g := range gens {
		if filepath.Base(g) != wantOrder[i] {
			t.Fatalf("generation order %v, want %v", gens, wantOrder)
		}
		want := fmt.Sprintf("gen%d", 5-i)
		if got, _ := os.ReadFile(g); string(got) != want {
			t.Fatalf("%s holds %q, want %q", filepath.Base(g), got, want)
		}
	}
	if !st.hasCheckpoint(id) {
		t.Fatal("hasCheckpoint false with generations present")
	}
	// The legacy file was beyond the keep window and must have been pruned.
	if _, err := os.Stat(filepath.Join(st.jobDir(id), "checkpoint")); err == nil {
		t.Fatal("legacy checkpoint survived pruning past the keep window")
	}
}

// TestCheckpointFailureKeepsOldGenerations: when writing a new generation
// fails permanently, the previous generations are untouched.
func TestCheckpointFailureKeepsOldGenerations(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{},
		faultfs.Fault{Op: faultfs.OpRename, PathSubstr: "checkpoint.", N: 2, Err: syscall.EACCES},
	)
	st, err := newStore(t.TempDir(), inj, &retrier{sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	const id = "j000001"
	if err := st.fs.MkdirAll(st.jobDir(id), 0o755); err != nil {
		t.Fatal(err)
	}
	save := func(p string) error {
		return st.saveCheckpoint(id, func(w io.Writer) error { _, err := w.Write([]byte(p)); return err })
	}
	if err := save("good"); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	if err := save("doomed"); err == nil {
		t.Fatal("faulted checkpoint reported success")
	}
	gens := st.checkpointGens(id)
	if len(gens) != 1 || filepath.Base(gens[0]) != "checkpoint.000001" {
		t.Fatalf("surviving generations %v, want only checkpoint.000001", gens)
	}
	if got, _ := os.ReadFile(gens[0]); string(got) != "good" {
		t.Fatalf("surviving generation corrupted: %q", got)
	}
}
