package service

import (
	"bytes"
	"fmt"

	"repro/internal/core"
)

// BuildSession constructs a fresh synthesis session for a normalized spec
// over the verbatim submitted circuit bytes. Exported for the cluster
// worker, which executes coordinator-assigned jobs outside a Manager; the
// daemon's own workers go through Manager.buildSession, which layers
// checkpoint-generation fallback and metrics on top of the same two steps.
func BuildSession(spec JobSpec, circuit []byte) (*core.Session, error) {
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	g, err := ParseCircuit(spec.Format, circuit)
	if err != nil {
		return nil, fmt.Errorf("parsing circuit: %w", err)
	}
	return core.NewSession(g, opts), nil
}

// RestoreSession revives a session from checkpoint bytes under the spec's
// options. core.ErrCorrupt means the blob is damaged (fall back to an older
// generation or a fresh build — determinism makes the rerun converge to the
// identical result); core.ErrMismatch means the checkpoint belongs to a
// different configuration and no sibling generation can match either.
func RestoreSession(spec JobSpec, checkpoint []byte) (*core.Session, error) {
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	return core.Restore(bytes.NewReader(checkpoint), opts)
}
