package service

import (
	"net/http"
	"reflect"
	"testing"
)

// TestSpecWindowQueryRoundTrip pins the windowed knobs end to end: HTTP
// query → JobSpec → Normalize (self-contained persisted bounds) →
// core.Options.
func TestSpecWindowQueryRoundTrip(t *testing.T) {
	r, _ := http.NewRequest(http.MethodPost,
		"/jobs?metric=er&threshold=0.01&windowed=1&window_max_pis=6"+
			"&window_max_nodes=48&window_skip_fanout_divisors=-1", nil)
	spec, err := specFromQuery(r)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Windowed || spec.WindowMaxPIs != 6 || spec.WindowMaxNodes != 48 ||
		spec.WindowSkipFanoutDivisors != -1 {
		t.Fatalf("query did not reach the spec: %+v", spec)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Unset knobs are pinned to concrete production bounds; negative ones
	// keep their stable "unbounded" encoding.
	if spec.WindowMaxDivisors <= 0 || spec.WindowSkipFanoutRoots <= 0 {
		t.Fatalf("Normalize left windowed bounds unpinned: %+v", spec)
	}
	if spec.WindowSkipFanoutDivisors != -1 {
		t.Fatalf("Normalize rewrote the unbounded knob: %+v", spec)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Windowed || opts.WindowMaxPIs != 6 || opts.WindowMaxNodes != 48 {
		t.Fatalf("spec did not reach the options: %+v", opts)
	}
	win := opts.WindowConfig()
	if win.MaxPIs != 6 || win.MaxNodes != 48 || win.SkipFanoutDivisors != 0 {
		t.Fatalf("options resolved to %+v", win)
	}
	opts2, _ := spec.Options()
	if !reflect.DeepEqual(opts, opts2) {
		t.Fatal("Options is not deterministic on a normalized spec")
	}

	if r, _ = http.NewRequest(http.MethodPost, "/jobs?metric=er&windowed=yes", nil); r != nil {
		if _, err := specFromQuery(r); err == nil {
			t.Fatal("bad windowed= value accepted")
		}
	}
}
