// Package resub implements ALSRAC's local approximate change (LAC):
// approximate resubstitution with an approximate care set.
//
// Given a node V and a set of divisor signals, the care set of V at the
// divisors is approximated by logic simulation with a small number of
// random patterns (Section III-A of the paper). A divisor set is feasible
// when, on the simulated patterns, equal divisor valuations always imply
// equal values of V — the sampled version of the classical resubstitution
// theorem (Theorem 1). For a feasible set, the replacement function is an
// irredundant sum-of-products computed over the sampled truth table, with
// all unseen divisor patterns as don't-cares (Section III-B3).
package resub

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/aig"
	"repro/internal/espresso"
	"repro/internal/sim"
	"repro/internal/tt"
	"repro/internal/wordops"
)

// Config controls candidate generation (Algorithm 2 of the paper).
type Config struct {
	// MaxLACsPerNode is the paper's parameter L: at most this many feasible
	// candidates are produced per node. The paper uses L=1.
	MaxLACsPerNode int
	// MaxReplaceTries caps how many TFI-cone nodes are tried as the
	// replacement divisor u per removed fanin. 0 means the whole cone, as
	// in the paper; benches set a cap for very large circuits.
	MaxReplaceTries int
	// MaxDivisors caps the divisor-set size. The paper's AIG flow uses 2
	// (Algorithm 1); setting 3 or more enables the triple-divisor
	// extension, which scans bounded pairs of replacement candidates.
	MaxDivisors int
	// DescendingLevels scans the TFI cone from the highest logic level
	// down (divisors near the node first) instead of the paper's ascending
	// order. Ablation knob.
	DescendingLevels bool
	// UseEspresso derives covers with the Espresso-style minimizer of
	// package espresso instead of plain Minato ISOP, matching the paper's
	// tooling. For the ≤2-divisor functions of the AIG flow the two nearly
	// always coincide; the knob matters for wider divisor sets.
	UseEspresso bool
}

// DefaultConfig mirrors the paper's experiment setup: L=1, unbounded cone
// scan, at most 2 divisors (the AIG flow of Section IV).
func DefaultConfig() Config {
	return Config{MaxLACsPerNode: 1, MaxReplaceTries: 0, MaxDivisors: 2}
}

// LAC is a candidate local approximate change: replace node Node by the
// sum-of-products Cover evaluated over the Divisors (Cover variable i is
// the value of Divisors[i]).
type LAC struct {
	Node     aig.Node
	Divisors []aig.Lit
	Cover    tt.Cover

	// Gain is the structural gain estimate in AND nodes: the node's MFFC
	// size minus the cost of materializing the cover.
	Gain int
	// Err is the estimated circuit error after applying the LAC; filled by
	// the flow after batch estimation.
	Err float64
}

// String renders the LAC for logs.
func (l *LAC) String() string {
	return fmt.Sprintf("resub n%d <- %v over %v (gain %d, err %.4g)",
		l.Node, l.Cover, l.Divisors, l.Gain, l.Err)
}

// BuildCover checks the feasibility of the divisors for target on the first
// valid simulated patterns and, when feasible, returns the ISOP cover of
// the sampled incompletely specified function. ok is false when two
// patterns agree on every divisor but disagree on the target (Theorem 1
// violated on the sample).
func BuildCover(vecs *sim.Vectors, divs []aig.Lit, target aig.Lit, valid int) (tt.Cover, bool) {
	return BuildCoverWith(vecs, divs, target, valid, tt.ISOP)
}

// wordCoverMaxVars is the widest divisor set handled by the word-parallel
// cover kernel: wordops.CoverScan packs the 2^k minterm masks into uint64s.
const wordCoverMaxVars = 6

// BuildCoverWith is BuildCover with an explicit two-level minimizer
// (tt.ISOP or espresso.Minimize).
//
// For up to wordCoverMaxVars divisors — every set the generator produces —
// the sampled truth table is extracted straight from the 64-way simulation
// words: wordops.CoverScan ANDs the (possibly complemented) divisor words
// into the 2^k divisor-minterm masks, detects infeasibility as a mask
// intersecting both the target and its complement, and reads the onset and
// care bits off the surviving masks. Infeasible sets — the vast majority of
// the tries during generation — are rejected without allocating. Wider sets
// fall back to the per-pattern reference loop.
func BuildCoverWith(vecs *sim.Vectors, divs []aig.Lit, target aig.Lit, valid int,
	minimize func(on, dc tt.Table) tt.Cover) (tt.Cover, bool) {

	k := len(divs)
	if k > tt.MaxVars {
		return nil, false
	}
	if k > wordCoverMaxVars {
		return buildCoverPerPattern(vecs, divs, target, valid, minimize)
	}
	var dw [wordCoverMaxVars][]uint64
	var dinv [wordCoverMaxVars]uint64
	for j, d := range divs {
		dw[j], dinv[j] = vecs.LitWords(d)
	}
	tgt, tinv := vecs.LitWords(target)
	on, care, ok := wordops.CoverScan(dw[:k], dinv[:k], tgt, tinv, valid)
	if !ok {
		return nil, false
	}
	onset, dc := tt.FromOnCare(k, on, care)
	return minimize(onset, dc), true
}

// buildCoverPerPattern is the per-pattern reference implementation of
// BuildCoverWith: one bit probe per (pattern, divisor). It remains the
// specification the word-parallel kernel is property-tested against, and
// the fallback for divisor sets wider than wordCoverMaxVars.
func buildCoverPerPattern(vecs *sim.Vectors, divs []aig.Lit, target aig.Lit, valid int,
	minimize func(on, dc tt.Table) tt.Cover) (tt.Cover, bool) {

	k := len(divs)
	onset := tt.New(k)
	care := tt.New(k)
	for p := 0; p < valid; p++ {
		key := 0
		for j, d := range divs {
			if vecs.LitBit(d, p) {
				key |= 1 << uint(j)
			}
		}
		v := vecs.LitBit(target, p)
		if care.Get(key) {
			if onset.Get(key) != v {
				return nil, false
			}
			continue
		}
		care.Set(key, true)
		if v {
			onset.Set(key, true)
		}
	}
	return minimize(onset, care.Not()), true
}

// CoverCost estimates the number of AND nodes needed to materialize a cover
// over existing divisor signals: each cube with m literals costs m−1 AND
// nodes and the disjunction of c cubes costs c−1 more.
func CoverCost(c tt.Cover) int {
	if len(c) == 0 {
		return 0
	}
	cost := len(c) - 1
	for _, cube := range c {
		if n := cube.NumLits(); n > 1 {
			cost += n - 1
		}
	}
	return cost
}

// BuildLit materializes the LAC's cover in graph g and returns the literal
// of the new function. The graph gains nodes; callers normally follow with
// aig.Graph.CopyWith to substitute and sweep.
func (l *LAC) BuildLit(g *aig.Graph) aig.Lit {
	terms := make([]aig.Lit, 0, len(l.Cover))
	for _, cube := range l.Cover {
		lits := make([]aig.Lit, 0, len(l.Divisors))
		for v, d := range l.Divisors {
			bit := uint32(1) << uint(v)
			if cube.Pos&bit != 0 {
				lits = append(lits, d)
			}
			if cube.Neg&bit != 0 {
				lits = append(lits, d.Not())
			}
		}
		terms = append(terms, g.AndN(lits...))
	}
	return g.OrN(terms...)
}

// Apply substitutes the LAC into g and returns the swept result. g itself
// gains scratch nodes but is otherwise unchanged.
func (l *LAC) Apply(g *aig.Graph) *aig.Graph {
	lit := l.BuildLit(g)
	return g.CopyWith(map[aig.Node]aig.Lit{l.Node: lit})
}

// ApplyInPlace commits the LAC into g itself: the replacement cover is
// materialized over the divisors and every reference to Node is rewired
// with ReplaceNode, which preserves the ids of untouched logic and frees
// the change's MFFC for slot recycling. Cover terms that strash-fold during
// construction can strand scratch nodes; the trailing garbage sweep frees
// them, so the live-node set matches Apply's swept result. When touched is
// non-nil it accumulates every node whose structure or reference count
// changed — together with an epoch snapshot taken before this call it seeds
// Graph.StaleClosure, the invalidation mask GenerateReuse consumes.
func (l *LAC) ApplyInPlace(g *aig.Graph, touched *[]aig.Node) {
	g.ReplaceNode(l.Node, l.BuildLit(g), touched)
	g.CollectGarbage(touched)
}

// EvalVec evaluates the LAC's new function on the divisor value vectors,
// writing the node's replacement vector into out. Plain divisors alias the
// value vectors directly and complemented ones use pooled scratch, so
// steady-state calls do not allocate.
func (l *LAC) EvalVec(vecs *sim.Vectors, out []uint64) {
	var ins [tt.MaxVars][]uint64
	var owned [tt.MaxVars]bool
	for i, d := range l.Divisors {
		if d.IsCompl() {
			buf := wordops.Get(vecs.Words)
			wordops.Not(buf, vecs.Node(d.Node()))
			ins[i], owned[i] = buf, true
		} else {
			ins[i] = vecs.Node(d.Node())
		}
	}
	l.Cover.EvalWords(ins[:len(l.Divisors)], vecs.Words, out)
	for i := range l.Divisors {
		if owned[i] {
			wordops.Put(ins[i])
		}
	}
}

// Generate produces the LAC candidate set of Algorithm 2: for every AND
// node, divisor sets from Algorithm 1 are checked for feasibility on the
// valid patterns of vecs, and feasible ones yield ISOP-based candidates.
// Candidates whose new structure would be larger than the logic they free
// are dropped — they cannot shrink the circuit. Zero-gain candidates are
// kept: exchanging a function for an equally sized one over more distant
// divisors regularly unlocks sharing for the follow-up optimization pass.
func Generate(g *aig.Graph, vecs *sim.Vectors, valid int, cfg Config) []LAC {
	return GenerateWorkers(g, vecs, valid, cfg, 1)
}

// GenerateWorkers is Generate with the per-node scan sharded across worker
// goroutines (0 = GOMAXPROCS). Per-node candidate generation only reads the
// shared graph, level order and value vectors — each worker owns a genState
// with a private reference-count copy (the MFFC computation temporarily
// mutates it), an epoch-stamped cone marker and reusable divisor scratch —
// and per-chunk outputs are concatenated in node order, so the candidate
// list is identical to the sequential scan for every worker count.
func GenerateWorkers(g *aig.Graph, vecs *sim.Vectors, valid int, cfg Config, workers int) []LAC {
	var ands []aig.Node
	for v := aig.Node(1); int(v) < g.NumNodes(); v++ {
		if g.IsAnd(v) {
			ands = append(ands, v)
		}
	}
	return generateOver(g, vecs, valid, cfg, workers, ands)
}

// GenerateReuse is GenerateWorkers with cross-iteration candidate reuse:
// cached holds the previous iteration's candidate list (sorted by node id,
// as Generate* return it) and stale flags the nodes whose candidates may
// have changed. Candidates of live unstale nodes are copied from the cache
// verbatim; only stale nodes are rescanned. The result is identical to a
// full GenerateWorkers run, because a node's candidates depend only on its
// TFI cone — structure, logic levels, value words — and on the reference
// counts inside it (via the MFFC gain), all of which a correct stale mask
// covers by construction (see core's dirty-TFO closure).
//
// Nodes at or beyond len(stale) are treated as stale (freshly grown slots).
// A nil stale mask or nil cache degrades to a full scan.
func GenerateReuse(g *aig.Graph, vecs *sim.Vectors, valid int, cfg Config, workers int,
	stale []bool, cached []LAC) []LAC {

	if stale == nil || cached == nil {
		return GenerateWorkers(g, vecs, valid, cfg, workers)
	}
	isStale := func(v aig.Node) bool {
		return int(v) >= len(stale) || stale[v]
	}
	var ands, rescan []aig.Node
	for v := aig.Node(1); int(v) < g.NumNodes(); v++ {
		if !g.IsAnd(v) {
			continue
		}
		ands = append(ands, v)
		if isStale(v) {
			rescan = append(rescan, v)
		}
	}
	fresh := generateOver(g, vecs, valid, cfg, workers, rescan)
	return MergeByNode(ands, isStale, cached, fresh)
}

// MergeByNode merges a previous candidate list with freshly rescanned
// entries in ascending node order: ands is the full live AND-node list,
// isStale selects the nodes whose entries come from fresh, and every other
// node keeps its cached entries verbatim. Cache entries of dead or stale
// nodes are dropped on the floor. Both candidate lists must be sorted by
// node id, as the Generate* functions produce them. It is shared by
// GenerateReuse and by package window's incremental path, which maintains
// the same per-node candidate layout.
func MergeByNode(ands []aig.Node, isStale func(aig.Node) bool, cached, fresh []LAC) []LAC {
	out := make([]LAC, 0, len(cached)+len(fresh))
	ci, fi := 0, 0
	for _, v := range ands {
		for ci < len(cached) && cached[ci].Node < v {
			ci++
		}
		if isStale(v) {
			for fi < len(fresh) && fresh[fi].Node == v {
				out = append(out, fresh[fi])
				fi++
			}
			continue
		}
		for ci < len(cached) && cached[ci].Node == v {
			out = append(out, cached[ci])
			ci++
		}
	}
	return out
}

// generateOver runs the per-node candidate scan of Algorithm 2 over an
// explicit, ascending list of AND nodes.
func generateOver(g *aig.Graph, vecs *sim.Vectors, valid int, cfg Config, workers int,
	ands []aig.Node) []LAC {

	levels := g.Levels()
	order, lstart := g.LevelOrder(levels)
	refs := g.RefCounts()
	workers = sim.Workers(workers, len(ands))
	if workers <= 1 {
		st := newGenState(g, vecs, valid, cfg, levels, order, lstart, refs)
		var lacs []LAC
		for _, v := range ands {
			lacs = st.appendNodeLACs(lacs, v)
		}
		return lacs
	}

	// Workers draw small contiguous node chunks from an atomic counter —
	// late nodes have larger TFI cones, so fixed per-worker halves would
	// imbalance badly — and chunks are merged in index order afterwards.
	const chunkNodes = 16
	nChunks := (len(ands) + chunkNodes - 1) / chunkNodes
	results := make([][]LAC, nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newGenState(g, vecs, valid, cfg, levels, order, lstart,
				append([]int32(nil), refs...))
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunkNodes
				hi := min(lo+chunkNodes, len(ands))
				var lacs []LAC
				for _, v := range ands[lo:hi] {
					lacs = st.appendNodeLACs(lacs, v)
				}
				results[c] = lacs
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]LAC, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// Scanner exposes the per-node candidate scan of Algorithm 2 over an
// explicit divisor pool, for callers that select divisors by other means
// than the full TFI cone — package window hands it the nodes of a
// reconvergence-driven window. A Scanner is single-goroutine scratch;
// concurrent workers each construct their own.
//
// ScanNode is bitwise identical to the Generate path's per-node scan
// whenever pool equals the node's TFI cone in the configured level order
// and mffc its full MFFC size; that identity is what the window-vs-global
// equivalence property rests on.
type Scanner struct {
	st genState
}

// NewScanner prepares a Scanner over the given graph and care-set value
// vectors (of which the first valid patterns are meaningful).
func NewScanner(g *aig.Graph, vecs *sim.Vectors, valid int, cfg Config) *Scanner {
	minimize := tt.ISOP
	if cfg.UseEspresso {
		minimize = espresso.Minimize
	}
	s := &Scanner{}
	s.st = genState{g: g, vecs: vecs, valid: valid, cfg: cfg, minimize: minimize}
	return s
}

// ScanNode appends node v's feasible candidates over the divisor pool
// (candidate nodes in scan order; entries equal to v, v's fanins or the
// constant node are skipped like the cone scan skips them) using mffc as
// the structural gain base, and returns the extended slice.
func (s *Scanner) ScanNode(lacs []LAC, v aig.Node, pool []aig.Node, mffc int) []LAC {
	return s.st.scanPool(lacs, v, pool, mffc)
}

// genState is the per-worker scratch of the candidate scan. The graph, its
// level order and the value vectors are shared read-only; the marker, the
// reference counts, and the cone/pool/divisor buffers are private, so the
// per-node loop allocates only when a feasible candidate is emitted.
type genState struct {
	g        *aig.Graph
	vecs     *sim.Vectors
	valid    int
	cfg      Config
	minimize func(on, dc tt.Table) tt.Cover

	levels []int32
	order  []aig.Node // nodes sorted by (level, id), CSR per level
	lstart []int32

	refs   []int32
	marker *aig.ConeMarker
	cone   []aig.Node // TFI of the current node in the configured level order
	tried  []aig.Node // scanned replacement candidates, reused for triples
	divBuf [3]aig.Lit
}

func newGenState(g *aig.Graph, vecs *sim.Vectors, valid int, cfg Config,
	levels []int32, order []aig.Node, lstart []int32, refs []int32) *genState {

	minimize := tt.ISOP
	if cfg.UseEspresso {
		minimize = espresso.Minimize
	}
	return &genState{
		g: g, vecs: vecs, valid: valid, cfg: cfg, minimize: minimize,
		levels: levels, order: order, lstart: lstart, refs: refs,
		marker: aig.NewConeMarker(g),
	}
}

// coneInLevelOrder fills s.cone with the TFI cone of v in the configured
// level order: (level, id) ascending, or descending levels with ascending
// ids within a level — the exact order the previous stable sort produced.
// Only the level buckets up to v's own level are visited.
//
//alsrac:hotpath
func (s *genState) coneInLevelOrder(v aig.Node) {
	s.marker.MarkTFI(s.g, v)
	s.cone = s.cone[:0]
	vl := int(s.levels[v])
	if s.cfg.DescendingLevels {
		for lev := vl; lev >= 0; lev-- {
			for _, u := range s.order[s.lstart[lev]:s.lstart[lev+1]] {
				if s.marker.InCone(u) {
					s.cone = append(s.cone, u)
				}
			}
		}
	} else {
		for lev := 0; lev <= vl; lev++ {
			for _, u := range s.order[s.lstart[lev]:s.lstart[lev+1]] {
				if s.marker.InCone(u) {
					s.cone = append(s.cone, u)
				}
			}
		}
	}
}

// appendNodeLACs implements the per-node part of Algorithm 2 over the
// divisor sets of Algorithm 1: the divisor pool is the node's full TFI cone
// in the configured level order, and the gain base its full MFFC size.
func (s *genState) appendNodeLACs(lacs []LAC, v aig.Node) []LAC {
	mffc := s.g.MFFCSize(v, s.refs)
	// Algorithm 1: the TFI cone of V sorted by logic level.
	s.coneInLevelOrder(v)
	return s.scanPool(lacs, v, s.cone, mffc)
}

// scanPool runs the divisor-set scan of Algorithm 2 for node v over an
// explicit divisor pool (candidate nodes in scan order) with a precomputed
// structural gain base mffc. It is the common kernel of the global path
// (pool = full TFI cone, mffc = full MFFC) and the windowed path of package
// window (pool = window nodes, mffc = window-bounded MFFC).
func (s *genState) scanPool(lacs []LAC, v aig.Node, pool []aig.Node, mffc int) []LAC {
	g, cfg := s.g, &s.cfg
	target := aig.MakeLit(v, false)

	fanins := [2]aig.Node{g.Fanin0(v).Node(), g.Fanin1(v).Node()}
	count := 0

	try := func(divs []aig.Lit) bool {
		if count >= cfg.MaxLACsPerNode {
			return false
		}
		cover, ok := BuildCoverWith(s.vecs, divs, target, s.valid, s.minimize)
		if !ok {
			return true // infeasible; keep scanning
		}
		gain := mffc - CoverCost(cover)
		if gain < 0 {
			// A growing replacement cannot simplify the circuit directly;
			// skip it (the paper's resubstitutions are cost-reducing).
			return true
		}
		lacs = append(lacs, LAC{
			Node:     v,
			Divisors: append([]aig.Lit(nil), divs...),
			Cover:    cover,
			Gain:     gain,
		})
		count++
		return count < cfg.MaxLACsPerNode
	}

	for i := 0; i < 2 && count < cfg.MaxLACsPerNode; i++ {
		removed := fanins[i]
		other := fanins[1-i]
		otherLit := aig.MakeLit(other, false)
		// Divisor set A: remove fanin i. The constant node is not a useful
		// divisor; use the empty set then (a constant resubstitution).
		// The sets share s.divBuf, so building them never allocates.
		a := s.divBuf[:0]
		if other != 0 {
			a = append(a, otherLit)
		}
		if !try(a) {
			break
		}
		// Divisor sets B: replace the removed fanin by a pool node.
		tries := 0
		s.tried = s.tried[:0]
		for _, u := range pool {
			if count >= cfg.MaxLACsPerNode {
				break
			}
			if cfg.MaxReplaceTries > 0 && tries >= cfg.MaxReplaceTries {
				break
			}
			if u == v || u == removed || u == other || u == 0 {
				continue
			}
			tries++
			s.tried = append(s.tried, u)
			b := append(a, aig.MakeLit(u, false))
			if !try(b) {
				break
			}
		}
		// Extension beyond the paper's AIG flow: when wider divisor sets
		// are allowed, also try triples {other, u1, u2} over a bounded
		// prefix of the scanned candidates. Richer functions approximate
		// more closely at a slightly higher structural cost.
		if cfg.MaxDivisors >= 3 && count < cfg.MaxLACsPerNode {
			limit := min(len(s.tried), 16)
			for x := 0; x < limit && count < cfg.MaxLACsPerNode; x++ {
				for y := x + 1; y < limit && count < cfg.MaxLACsPerNode; y++ {
					b := append(a,
						aig.MakeLit(s.tried[x], false), aig.MakeLit(s.tried[y], false))
					if !try(b) {
						break
					}
				}
			}
		}
	}
	return lacs
}
