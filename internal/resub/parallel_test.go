package resub

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

func randomAIG(rng *rand.Rand, nPIs, nAnds, nPOs int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < nPOs; i++ {
		g.AddPO(lits[len(lits)-1-rng.Intn(min(8, len(lits)))], "f")
	}
	return g
}

// TestGenerateWorkersDeterministic: the sharded scan must produce exactly
// the sequential candidate list — same LACs, same order — for any worker
// count, including counts above the chunk count.
func TestGenerateWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		g := randomAIG(rng, 8, 150, 4)
		care := sim.UniformN(g.NumPIs(), 32, int64(trial+5))
		vecs := sim.Simulate(g, care)
		for _, cfg := range []Config{
			DefaultConfig(),
			{MaxLACsPerNode: 2, MaxDivisors: 3},
			{MaxLACsPerNode: 1, MaxDivisors: 2, UseEspresso: true},
		} {
			ref := Generate(g, vecs, care.Valid, cfg)
			for _, workers := range []int{2, 3, 7, 64} {
				got := GenerateWorkers(g, vecs, care.Valid, cfg, workers)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("trial %d cfg %+v workers %d: candidate list differs (%d vs %d LACs)",
						trial, cfg, workers, len(ref), len(got))
				}
			}
		}
		vecs.Release()
	}
}

// TestEvalVecPooledScratch: EvalVec with pooled scratch must produce the
// same replacement vector as a naive evaluation, for plain and complemented
// divisors.
func TestEvalVecPooledScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomAIG(rng, 6, 80, 3)
	care := sim.UniformN(g.NumPIs(), 128, 11)
	vecs := sim.Simulate(g, care)
	lacs := Generate(g, vecs, care.Valid, Config{MaxLACsPerNode: 4, MaxDivisors: 3})
	if len(lacs) == 0 {
		t.Skip("no candidates generated")
	}
	for li := range lacs {
		l := &lacs[li]
		// Force a complemented divisor variant too.
		variants := []LAC{*l}
		if len(l.Divisors) > 0 {
			flipped := *l
			flipped.Divisors = append([]aig.Lit(nil), l.Divisors...)
			flipped.Divisors[0] = flipped.Divisors[0].Not()
			variants = append(variants, flipped)
		}
		for _, v := range variants {
			got := make([]uint64, vecs.Words)
			v.EvalVec(vecs, got)

			// Naive reference evaluation.
			ins := make([][]uint64, len(v.Divisors))
			for i, d := range v.Divisors {
				ins[i] = vecs.LitInto(d, make([]uint64, vecs.Words))
			}
			want := make([]uint64, vecs.Words)
			v.Cover.EvalWords(ins, vecs.Words, want)
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("LAC %d word %d: %x want %x", li, w, got[w], want[w])
				}
			}
		}
	}
	vecs.Release()
}
