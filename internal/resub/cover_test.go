package resub

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
	"repro/internal/tt"
)

// randomGraph builds a random strashed AIG with nPIs inputs and about nAnds
// AND nodes over randomly complemented fanins.
func randomGraph(rng *rand.Rand, nPIs, nAnds int) *aig.Graph {
	g := aig.New()
	lits := make([]aig.Lit, 0, nPIs+nAnds)
	for _, l := range g.AddPIs(nPIs, "x") {
		lits = append(lits, l)
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	g.AddPO(lits[len(lits)-1], "f")
	return g
}

func coversEqual(a, b tt.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBuildCoverWordMatchesPerPattern property-tests the word-parallel cover
// kernel against the per-pattern reference implementation on random graphs,
// random (possibly complemented) divisor sets of width 0..wordCoverMaxVars,
// random targets, and valid pattern counts that include non-multiples of 64.
func TestBuildCoverWordMatchesPerPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	validCounts := []int{1, 3, 37, 64, 65, 100, 128, 200}
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 3+rng.Intn(5), 10+rng.Intn(40))
		nPat := validCounts[rng.Intn(len(validCounts))] + rng.Intn(30)
		p := sim.UniformN(g.NumPIs(), nPat, int64(1000+trial))
		vecs := sim.Simulate(g, p)

		randomLit := func() aig.Lit {
			n := aig.Node(1 + rng.Intn(g.NumNodes()-1))
			return aig.MakeLit(n, rng.Intn(2) == 0)
		}
		for set := 0; set < 50; set++ {
			k := rng.Intn(wordCoverMaxVars + 1)
			divs := make([]aig.Lit, k)
			for j := range divs {
				divs[j] = randomLit()
			}
			target := randomLit()
			valid := 1 + rng.Intn(p.Valid)

			got, gotOK := BuildCoverWith(vecs, divs, target, valid, tt.ISOP)
			want, wantOK := buildCoverPerPattern(vecs, divs, target, valid, tt.ISOP)
			if gotOK != wantOK {
				t.Fatalf("trial %d set %d (k=%d valid=%d): feasibility %v, reference %v",
					trial, set, k, valid, gotOK, wantOK)
			}
			if gotOK && !coversEqual(got, want) {
				t.Fatalf("trial %d set %d (k=%d valid=%d): cover %v, reference %v",
					trial, set, k, valid, got, want)
			}
		}
		vecs.Release()
	}
}

// TestBuildCoverTailBitsIgnored checks that garbage bits at or beyond the
// valid pattern count never reach the feasibility check: both code paths
// must agree on a valid count that cuts the last word short.
func TestBuildCoverTailBitsIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 4, 30)
	// 100 patterns: 2 words, the last one only 36 bits valid.
	p := sim.UniformN(g.NumPIs(), 100, 5)
	vecs := sim.Simulate(g, p)
	defer vecs.Release()

	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if !g.IsAnd(n) {
			continue
		}
		divs := []aig.Lit{g.Fanin0(n), g.Fanin1(n)}
		target := aig.MakeLit(n, false)
		for _, valid := range []int{1, 63, 64, 65, 99, 100} {
			got, gotOK := BuildCoverWith(vecs, divs, target, valid, tt.ISOP)
			want, wantOK := buildCoverPerPattern(vecs, divs, target, valid, tt.ISOP)
			if gotOK != wantOK || (gotOK && !coversEqual(got, want)) {
				t.Fatalf("node %d valid=%d: (%v,%v) vs reference (%v,%v)",
					n, valid, got, gotOK, want, wantOK)
			}
			// The fanins of an AND node are always a feasible divisor set
			// for it: the node is a function of them on every pattern.
			if !gotOK {
				t.Fatalf("node %d valid=%d: fanin divisors reported infeasible", n, valid)
			}
		}
	}
}
