package resub

import (
	"encoding/binary"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
	"repro/internal/tt"
)

// FuzzCoverScan drives the word-parallel cover kernel and the per-pattern
// reference over fuzzer-chosen simulation words, divisor sets and valid
// counts, and requires them to agree exactly — the same contract
// TestBuildCoverWordMatchesPerPattern samples randomly. On feasible sets it
// additionally checks the semantic property both implementations promise:
// the minimized cover reproduces the target bit on every valid pattern.
func FuzzCoverScan(f *testing.F) {
	f.Add([]byte{0x00}, uint8(2), uint8(2), uint16(64))
	f.Add([]byte{0xFF, 0x0F, 0xF0, 0xAA, 0x55}, uint8(3), uint8(9), uint16(100))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67}, uint8(6), uint8(4), uint16(1))
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01}, uint8(0), uint8(7), uint16(65))

	f.Fuzz(func(t *testing.T, data []byte, kRaw, targetRaw uint8, validRaw uint16) {
		const (
			nodes = 5 // constant node + 4 value nodes
			words = 2 // 128 patterns, so valid can cut the last word short
		)
		k := int(kRaw % (wordCoverMaxVars + 1))
		valid := 1 + int(validRaw)%(words*64)

		vecs := sim.NewVectors(nodes, words)
		defer vecs.Release()
		for n := aig.Node(1); n < nodes; n++ {
			ws := vecs.Node(n)
			for i := range ws {
				ws[i] = wordAt(data, (int(n)-1)*words+i)
			}
		}

		// Derive divisor/target literals from the fuzz input; selector bit 2
		// onward picks the node, bit 0 the complement.
		litAt := func(idx int) aig.Lit {
			sel := wordAt(data, 97+idx) ^ uint64(targetRaw)
			n := aig.Node(1 + sel>>1%(nodes-1))
			return aig.MakeLit(n, sel&1 == 1)
		}
		divs := make([]aig.Lit, k)
		for j := range divs {
			divs[j] = litAt(j + 1)
		}
		target := litAt(0)

		got, gotOK := BuildCoverWith(vecs, divs, target, valid, tt.ISOP)
		want, wantOK := buildCoverPerPattern(vecs, divs, target, valid, tt.ISOP)
		if gotOK != wantOK {
			t.Fatalf("k=%d valid=%d: kernel feasibility %v, reference %v", k, valid, gotOK, wantOK)
		}
		if !gotOK {
			return
		}
		if !coversEqual(got, want) {
			t.Fatalf("k=%d valid=%d: kernel cover %v, reference %v", k, valid, got, want)
		}
		tbl := got.Table(k)
		for p := 0; p < valid; p++ {
			key := 0
			for j, d := range divs {
				if vecs.LitBit(d, p) {
					key |= 1 << uint(j)
				}
			}
			if tbl.Get(key) != vecs.LitBit(target, p) {
				t.Fatalf("k=%d valid=%d: cover %v wrong on pattern %d (key %d)", k, valid, got, p, key)
			}
		}
	})
}

// wordAt reads the i-th little-endian word of a byte string treated as
// cyclic, so short fuzz inputs still populate every simulation word.
func wordAt(data []byte, i int) uint64 {
	if len(data) == 0 {
		return 0
	}
	var b [8]byte
	for j := range b {
		b[j] = data[(i*8+j)%len(data)]
	}
	return binary.LittleEndian.Uint64(b[:])
}
