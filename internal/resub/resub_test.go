package resub

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
	"repro/internal/tt"
)

// figure1 builds the example circuit of Fig. 1a in the paper:
//
//	x = NOR(a,b), y = AND(b,c), z = NOR(x,y), u = OR(c,d), w = NOT(c),
//	v = XOR(z,w)
//
// It returns the graph and the literals of the named signals.
func figure1() (g *aig.Graph, a, b, c, d, x, y, u, z, w, v aig.Lit) {
	g = aig.New()
	a = g.AddPI("a")
	b = g.AddPI("b")
	c = g.AddPI("c")
	d = g.AddPI("d")
	x = g.Or(a, b).Not()
	y = g.And(b, c)
	z = g.Or(x, y).Not()
	u = g.Or(c, d)
	w = c.Not()
	v = g.Xor(z, w)
	g.AddPO(v, "v")
	return
}

// tableI is the expected node values from Table I of the paper, indexed by
// the row label abcd (a is the first character).
var tableI = []struct {
	abcd             string
	x, y, u, z, w, v int
}{
	{"0000", 1, 0, 0, 0, 1, 1},
	{"0001", 1, 0, 1, 0, 1, 1},
	{"0010", 1, 0, 1, 0, 0, 0},
	{"0011", 1, 0, 1, 0, 0, 0},
	{"0100", 0, 0, 0, 1, 1, 0},
	{"0101", 0, 0, 1, 1, 1, 0},
	{"0110", 0, 1, 1, 0, 0, 0},
	{"0111", 0, 1, 1, 0, 0, 0},
	{"1000", 0, 0, 0, 1, 1, 0},
	{"1001", 0, 0, 1, 1, 1, 0},
	{"1010", 0, 0, 1, 1, 0, 1},
	{"1011", 0, 0, 1, 1, 0, 1},
	{"1100", 0, 0, 0, 1, 1, 0},
	{"1101", 0, 0, 1, 1, 1, 0},
	{"1110", 0, 1, 1, 0, 0, 0},
	{"1111", 0, 1, 1, 0, 0, 0},
}

// minterm converts an "abcd" row label into the exhaustive-pattern index
// (PI 0 = a is the least significant bit).
func minterm(abcd string) int {
	m := 0
	for i, ch := range abcd {
		if ch == '1' {
			m |= 1 << i
		}
	}
	return m
}

func TestPaperExampleTableI(t *testing.T) {
	g, _, _, _, _, x, y, u, z, w, v := figure1()
	vecs := sim.Simulate(g, sim.Exhaustive(4))
	for _, row := range tableI {
		m := minterm(row.abcd)
		checks := []struct {
			name string
			lit  aig.Lit
			want int
		}{
			{"x", x, row.x}, {"y", y, row.y}, {"u", u, row.u},
			{"z", z, row.z}, {"w", w, row.w}, {"v", v, row.v},
		}
		for _, ck := range checks {
			got := 0
			if vecs.LitBit(ck.lit, m) {
				got = 1
			}
			if got != ck.want {
				t.Errorf("row %s: %s = %d, want %d", row.abcd, ck.name, got, ck.want)
			}
		}
	}
}

func TestPaperExampleInfeasibleOnFullCareSet(t *testing.T) {
	// Example 2: over all 16 patterns, {u,z} cannot resubstitute v.
	g, _, _, _, _, _, _, u, z, _, v := figure1()
	vecs := sim.Simulate(g, sim.Exhaustive(4))
	if _, ok := BuildCover(vecs, []aig.Lit{u, z}, v, 16); ok {
		t.Fatalf("divisors {u,z} must be infeasible with the accurate care set")
	}
}

func TestPaperExampleDependenceOnCD(t *testing.T) {
	// Section III-B2: {a,b} cannot resubstitute v because v also depends
	// on c and d.
	g, a, b, _, _, _, _, _, _, _, v := figure1()
	vecs := sim.Simulate(g, sim.Exhaustive(4))
	if _, ok := BuildCover(vecs, []aig.Lit{a, b}, v, 16); ok {
		t.Fatalf("divisors {a,b} must be infeasible")
	}
}

// paperPatterns builds the 5 simulation patterns of Example 1:
// abcd ∈ {0000, 0010, 0011, 0100, 1000}.
func paperPatterns() *sim.Patterns {
	rows := []string{"0000", "0010", "0011", "0100", "1000"}
	p := &sim.Patterns{Words: 1, Valid: len(rows), In: make([][]uint64, 4)}
	for pi := 0; pi < 4; pi++ {
		var w uint64
		for bit, row := range rows {
			if row[pi] == '1' {
				w |= 1 << uint(bit)
			}
		}
		p.In[pi] = []uint64{w}
	}
	return p
}

func TestPaperExampleApproximateResubstitution(t *testing.T) {
	// Examples 1, 3 and 4: with the 5 sampled patterns, {u,z} is feasible
	// for v and the derived ISOP is v̂ = ¬u ∧ ¬z (a NOR gate).
	g, _, _, _, _, _, _, u, z, _, v := figure1()
	p := paperPatterns()
	vecs := sim.Simulate(g, p)
	cover, ok := BuildCover(vecs, []aig.Lit{u, z}, v, p.Valid)
	if !ok {
		t.Fatalf("divisors {u,z} must be feasible on the sampled care set")
	}
	if len(cover) != 1 {
		t.Fatalf("cover = %v, want a single cube", cover)
	}
	if cover[0].Pos != 0 || cover[0].Neg != 0b11 {
		t.Fatalf("cube = %+v, want ¬u∧¬z", cover[0])
	}
}

func TestPaperExampleErrorRate(t *testing.T) {
	// Example 1: replacing v by NOR(u,z) flips 3 of the 16 patterns
	// (error rate 18.75% at node v under uniform inputs).
	g, _, _, _, _, _, _, u, z, _, v := figure1()
	lac := LAC{
		Node:     v.Node(),
		Divisors: []aig.Lit{u, z},
		Cover:    tt.Cover{tt.Cube{Neg: 0b11}},
	}
	before := sim.Simulate(g, sim.Exhaustive(4))
	vOld := append([]uint64(nil), before.Node(v.Node())...)

	ng := lac.Apply(g)
	after := sim.Simulate(ng, sim.Exhaustive(4))
	// Compare the PO (v is the only output; account for PO phases).
	oldPO := before.LitInto(g.PO(0), make([]uint64, 1))
	newPO := after.LitInto(ng.PO(0), make([]uint64, 1))
	diff := (oldPO[0] ^ newPO[0]) & 0xFFFF
	n := 0
	for x := diff; x != 0; x &= x - 1 {
		n++
	}
	if n != 3 {
		t.Fatalf("approximate circuit differs on %d of 16 patterns, want 3", n)
	}
	_ = vOld
}

func TestPaperExampleSimplifiesCircuit(t *testing.T) {
	g, _, _, _, _, _, _, u, z, _, v := figure1()
	lac := LAC{
		Node:     v.Node(),
		Divisors: []aig.Lit{u, z},
		Cover:    tt.Cover{tt.Cube{Neg: 0b11}},
	}
	before := g.NumAnds()
	ng := lac.Apply(g)
	if ng.NumAnds() >= before {
		t.Fatalf("ANDs %d -> %d: LAC did not simplify", before, ng.NumAnds())
	}
}

func TestBuildCoverConstantNode(t *testing.T) {
	// Empty divisor set: feasible iff the node is constant on the sample.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	f := g.And(a, b)
	g.AddPO(f, "f")
	// Patterns where f is always 0: a=0 always.
	p := &sim.Patterns{Words: 1, Valid: 4, In: [][]uint64{{0x0}, {0x6}}}
	vecs := sim.Simulate(g, p)
	cover, ok := BuildCover(vecs, nil, f, p.Valid)
	if !ok {
		t.Fatalf("constant resubstitution must be feasible")
	}
	if len(cover) != 0 {
		t.Fatalf("cover = %v, want empty (constant 0)", cover)
	}
	// Patterns where f varies: infeasible with no divisors.
	p2 := sim.Exhaustive(2)
	vecs2 := sim.Simulate(g, p2)
	if _, ok := BuildCover(vecs2, nil, f, 4); ok {
		t.Fatalf("varying node must be infeasible with empty divisors")
	}
}

func TestCoverCost(t *testing.T) {
	cases := []struct {
		cover tt.Cover
		want  int
	}{
		{tt.Cover{}, 0},
		{tt.Cover{{}}, 0},                                   // constant 1
		{tt.Cover{{Pos: 1}}, 0},                             // single literal
		{tt.Cover{{Pos: 3}}, 1},                             // 2-lit cube
		{tt.Cover{{Pos: 1}, {Neg: 2}}, 1},                   // or of 2 literals
		{tt.Cover{{Pos: 3}, {Neg: 3}}, 3},                   // xnor-ish
		{tt.Cover{{Pos: 7}, {Pos: 1, Neg: 6}, {Neg: 1}}, 6}, // 3 cubes
	}
	for i, c := range cases {
		if got := CoverCost(c.cover); got != c.want {
			t.Errorf("case %d: CoverCost(%v) = %d, want %d", i, c.cover, got, c.want)
		}
	}
}

func TestGenerateFindsExactResubstitutions(t *testing.T) {
	// Build a circuit with a redundant reconstruction: f = (a&b) | (a&b&c).
	// The node (a&b&c) is absorbed by (a&b); generation with the full care
	// set must find zero-error simplifications.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	abc := g.And(ab, c)
	f := g.Or(ab, abc)
	g.AddPO(f, "f")

	p := sim.Exhaustive(3)
	vecs := sim.Simulate(g, p)
	lacs := Generate(g, vecs, p.Valid, DefaultConfig())
	if len(lacs) == 0 {
		t.Fatalf("no LACs generated for redundant circuit")
	}
	// At least one LAC must be error-free: applying it preserves the PO
	// function on all 8 patterns.
	found := false
	for i := range lacs {
		ng := lacs[i].Apply(g)
		nv := sim.Simulate(ng, p)
		oldPO := vecs.LitInto(g.PO(0), make([]uint64, 1))
		newPO := nv.LitInto(ng.PO(0), make([]uint64, 1))
		if (oldPO[0]^newPO[0])&0xFF == 0 && ng.NumAnds() < g.NumAnds() {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no zero-error simplifying LAC among %d candidates", len(lacs))
	}
}

func TestGenerateRespectsLACLimit(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(4, "x")
	f := g.AndN(xs...)
	g.AddPO(f, "f")
	p := sim.UniformN(4, 8, 1)
	vecs := sim.Simulate(g, p)

	cfg := DefaultConfig()
	cfg.MaxLACsPerNode = 1
	lacs1 := Generate(g, vecs, p.Valid, cfg)
	perNode := map[aig.Node]int{}
	for _, l := range lacs1 {
		perNode[l.Node]++
	}
	for n, c := range perNode {
		if c > 1 {
			t.Errorf("node %d has %d LACs, limit 1", n, c)
		}
	}
	cfg.MaxLACsPerNode = 4
	lacs4 := Generate(g, vecs, p.Valid, cfg)
	if len(lacs4) < len(lacs1) {
		t.Errorf("raising L reduced candidates: %d -> %d", len(lacs1), len(lacs4))
	}
}

func TestGenerateGainIsPositive(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(6, "x")
	f := g.Or(g.AndN(xs[:3]...), g.AndN(xs[3:]...))
	g.AddPO(f, "f")
	p := sim.UniformN(6, 16, 3)
	vecs := sim.Simulate(g, p)
	for _, l := range Generate(g, vecs, p.Valid, DefaultConfig()) {
		if l.Gain <= 0 {
			t.Errorf("LAC %v has non-positive gain", &l)
		}
	}
}

func TestLACEvalVecMatchesApply(t *testing.T) {
	// The bit-parallel evaluation of a LAC's new function must match the
	// node's value in the structurally substituted circuit.
	g, _, _, _, _, _, _, u, z, _, v := figure1()
	lac := LAC{
		Node:     v.Node(),
		Divisors: []aig.Lit{u, z},
		Cover:    tt.Cover{tt.Cube{Neg: 0b11}},
	}
	p := sim.Exhaustive(4)
	vecs := sim.Simulate(g, p)
	out := make([]uint64, vecs.Words)
	lac.EvalVec(vecs, out)
	// Reference: ¬u ∧ ¬z from the simulated divisor vectors.
	ub := vecs.LitInto(u, make([]uint64, 1))
	zb := vecs.LitInto(z, make([]uint64, 1))
	want := ^ub[0] & ^zb[0]
	if out[0] != want {
		t.Fatalf("EvalVec = %x, want %x", out[0], want)
	}
}

func TestBuildLitConstantCover(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	lac := LAC{Node: a.Node(), Divisors: nil, Cover: tt.Cover{}}
	if got := lac.BuildLit(g); got != aig.LitFalse {
		t.Fatalf("empty cover lit = %v, want const 0", got)
	}
	lac.Cover = tt.Cover{{}}
	if got := lac.BuildLit(g); got != aig.LitTrue {
		t.Fatalf("tautology cover lit = %v, want const 1", got)
	}
}

func TestTripleDivisorExtension(t *testing.T) {
	// v = a XOR b XOR c cannot be resubstituted with 2 divisors drawn from
	// {a,b,c} plus one fanin, but a 3-divisor set {a,b,c} expresses it
	// exactly. Build xor3 through a chain so the top node's fanins are
	// internal, then check the extension finds a valid candidate.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	axb := g.Xor(a, b)
	v := g.Xor(axb, c)
	g.AddPO(v, "v")

	p := sim.Exhaustive(3)
	vecs := sim.Simulate(g, p)

	cfg := DefaultConfig()
	cfg.MaxLACsPerNode = 1 << 20
	two := Generate(g, vecs, p.Valid, cfg)

	cfg.MaxDivisors = 3
	three := Generate(g, vecs, p.Valid, cfg)
	if len(three) < len(two) {
		t.Fatalf("triple extension lost candidates: %d -> %d", len(two), len(three))
	}
	foundTriple := false
	for i := range three {
		if len(three[i].Divisors) == 3 {
			foundTriple = true
			// Every triple LAC must still be a valid, applicable change.
			ng := three[i].Apply(g.Clone())
			if err := ng.Check(); err != nil {
				t.Fatalf("triple LAC produced invalid graph: %v", err)
			}
		}
	}
	if !foundTriple {
		t.Fatalf("no 3-divisor candidates generated")
	}
}

func TestGenerateDefaultIsTwoDivisors(t *testing.T) {
	g := aig.New()
	xs := g.AddPIs(6, "x")
	f := g.Or(g.AndN(xs[:3]...), g.AndN(xs[3:]...))
	g.AddPO(f, "f")
	p := sim.UniformN(6, 32, 9)
	vecs := sim.Simulate(g, p)
	cfg := DefaultConfig()
	cfg.MaxLACsPerNode = 1 << 20
	for _, l := range Generate(g, vecs, p.Valid, cfg) {
		if len(l.Divisors) > 2 {
			t.Fatalf("paper-default config produced %d divisors", len(l.Divisors))
		}
	}
}
