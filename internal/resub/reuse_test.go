package resub

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aig"
	"repro/internal/sim"
)

// TestGenerateReuseMatchesFull drives random in-place replacement sequences
// and checks after each commit that GenerateReuse with the stale-closure
// mask and the previous candidate list reproduces a from-scratch
// GenerateWorkers run exactly — covers, divisors, gains, order — while
// actually reusing cached entries.
func TestGenerateReuseMatchesFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLACsPerNode = 2
	for _, workers := range []int{1, 2, 4} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*17 + int64(workers)))
			g := genTestGraph(rng, 8, 60)
			pats := sim.Uniform(g.NumPIs(), 2, seed+900)
			arena := sim.NewArena(g, pats, workers)
			cache := GenerateWorkers(g, arena.Vectors(), pats.Valid, cfg, workers)
			reused := false
			for step := 0; step < 12; step++ {
				ands := liveAndNodes(g)
				if len(ands) == 0 {
					break
				}
				v := ands[rng.Intn(len(ands))]
				epochs := make([]uint32, g.NumNodes())
				for i := range epochs {
					epochs[i] = g.Epoch(aig.Node(i))
				}
				var touched []aig.Node
				g.ReplaceNode(v, replacementLit(rng, g, v), &touched)
				arena.Update()

				stale := g.StaleClosure(epochs, touched)
				got := GenerateReuse(g, arena.Vectors(), pats.Valid, cfg, workers, stale, cache)
				want := GenerateWorkers(g, arena.Vectors(), pats.Valid, cfg, workers)
				if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
					t.Fatalf("workers %d seed %d step %d: reuse diverged from full generation:\n got %v\nwant %v",
						workers, seed, step, got, want)
				}
				for _, n := range ands {
					if g.IsAnd(n) && int(n) < len(stale) && !stale[n] {
						reused = true
					}
				}
				cache = got
			}
			if !reused {
				t.Fatalf("workers %d seed %d: stale mask never spared a node — reuse untested", workers, seed)
			}
			arena.Release()
		}
	}
}

// TestApplyInPlaceMatchesApply: committing a generated LAC in place (graph
// mutation + garbage collection) must leave exactly the live circuit that the
// copying Apply path produces — same function, same AND count — across random
// graphs and sequences of commits.
func TestApplyInPlaceMatchesApply(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLACsPerNode = 2
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		g := genTestGraph(rng, 8, 60)
		pats := sim.Uniform(g.NumPIs(), 2, seed+450)
		for step := 0; step < 6; step++ {
			vecs := sim.Simulate(g, pats)
			lacs := GenerateWorkers(g, vecs, pats.Valid, cfg, 1)
			vecs.Release()
			if len(lacs) == 0 {
				break
			}
			lac := lacs[rng.Intn(len(lacs))]
			want := lac.Apply(g)

			var touched []aig.Node
			lac.ApplyInPlace(g, &touched)
			if err := g.CheckStrict(); err != nil {
				t.Fatalf("seed %d step %d: in-place commit corrupted the graph: %v", seed, step, err)
			}
			if g.NumAnds() != want.NumAnds() {
				t.Fatalf("seed %d step %d: in-place %d ANDs, Apply %d",
					seed, step, g.NumAnds(), want.NumAnds())
			}
			full := sim.Exhaustive(g.NumPIs())
			gotV := sim.Simulate(g, full)
			wantV := sim.Simulate(want, full)
			for po := 0; po < g.NumPOs(); po++ {
				gw, ginv := gotV.LitWords(g.PO(po))
				ww, winv := wantV.LitWords(want.PO(po))
				for w := range gw {
					if gw[w]^ginv != ww[w]^winv {
						t.Fatalf("seed %d step %d: PO %d diverges between in-place and Apply",
							seed, step, po)
					}
				}
			}
			gotV.Release()
			wantV.Release()
		}
	}
}

// TestGenerateReuseDegradesToFull pins the nil-mask and nil-cache paths.
func TestGenerateReuseDegradesToFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := genTestGraph(rng, 6, 40)
	pats := sim.Uniform(g.NumPIs(), 2, 77)
	vecs := sim.Simulate(g, pats)
	defer vecs.Release()
	cfg := DefaultConfig()
	want := GenerateWorkers(g, vecs, pats.Valid, cfg, 1)
	if got := GenerateReuse(g, vecs, pats.Valid, cfg, 1, nil, want); !reflect.DeepEqual(got, want) {
		t.Fatal("nil stale mask did not degrade to a full scan")
	}
	stale := make([]bool, g.NumNodes())
	if got := GenerateReuse(g, vecs, pats.Valid, cfg, 1, stale, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache did not degrade to a full scan")
	}
	// All-stale mask with an empty cache must also reproduce the full scan.
	for i := range stale {
		stale[i] = true
	}
	if got := GenerateReuse(g, vecs, pats.Valid, cfg, 1, stale, []LAC{}); !reflect.DeepEqual(got, want) {
		t.Fatal("all-stale mask did not reproduce the full scan")
	}
}

func genTestGraph(rng *rand.Rand, nPIs, size int) *aig.Graph {
	g := aig.New()
	lits := g.AddPIs(nPIs, "x")
	for len(lits) < nPIs+size {
		a := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		if rng.Intn(2) == 0 {
			lits = append(lits, g.And(a, b))
		} else {
			lits = append(lits, g.Xor(a, b))
		}
	}
	for i := 0; i < 4; i++ {
		g.AddPO(lits[len(lits)-1-i].NotCond(i%2 == 0), "")
	}
	return g.Sweep()
}

func liveAndNodes(g *aig.Graph) []aig.Node {
	var out []aig.Node
	for n := aig.Node(1); int(n) < g.NumNodes(); n++ {
		if g.IsAnd(n) {
			out = append(out, n)
		}
	}
	return out
}

func replacementLit(rng *rand.Rand, g *aig.Graph, v aig.Node) aig.Lit {
	if rng.Intn(8) == 0 {
		return aig.LitFalse
	}
	pick := func() aig.Lit {
		n := aig.Node(rng.Intn(int(v)))
		for g.Kind(n) == aig.KindDead {
			n--
		}
		return aig.MakeLit(n, rng.Intn(2) == 0)
	}
	return g.And(pick(), pick())
}
