// Package blif reads and writes combinational circuits in the Berkeley
// Logic Interchange Format (BLIF), the netlist format of SIS and ABC used
// for the paper's benchmarks, and converts between BLIF networks and AIGs.
//
// The supported subset is the combinational core: .model/.inputs/.outputs/
// .names/.end, with multi-line continuation (backslash) and both on-set and
// off-set covers. Latches and subcircuits are rejected with an error.
package blif

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Parser hardening limits: a single line (after continuation joining) and
// the node/signal counts of an accepted network are capped so adversarial
// inputs are rejected with a typed error instead of exhausting memory in
// the AIG conversion downstream.
const (
	// MaxLineLen bounds one physical line and one joined logical line.
	MaxLineLen = 1 << 20
	// MaxNodes bounds .names nodes and declared inputs/outputs each.
	MaxNodes = 1 << 23
)

// ErrTooLarge is wrapped by every limit violation, so callers can treat any
// oversized dimension as one typed rejection class.
var ErrTooLarge = errors.New("blif: input exceeds parser limits")

// Row is one line of a .names cover: a pattern over the node inputs
// ('0', '1' or '-') and the output value it asserts.
type Row struct {
	Pattern string
	Value   byte // '0' or '1'
}

// Node is a .names logic node.
type Node struct {
	Inputs []string
	Output string
	Cover  []Row
}

// Network is a combinational BLIF network.
type Network struct {
	Name    string
	Inputs  []string
	Outputs []string
	Nodes   []Node
}

// Read parses a BLIF network from r.
func Read(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineLen)

	var logical []string
	var pending strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if pending.Len()+len(line) > MaxLineLen {
			return nil, fmt.Errorf("%w: continuation line longer than %d bytes", ErrTooLarge, MaxLineLen)
		}
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		logical = append(logical, pending.String())
		pending.Reset()
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("%w: line longer than %d bytes", ErrTooLarge, MaxLineLen)
		}
		return nil, fmt.Errorf("blif: reading input: %w", err)
	}

	net := &Network{}
	var cur *Node
	flush := func() {
		if cur != nil {
			net.Nodes = append(net.Nodes, *cur)
			cur = nil
		}
	}
	for _, line := range logical {
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				net.Name = fields[1]
			}
		case ".inputs":
			flush()
			net.Inputs = append(net.Inputs, fields[1:]...)
			if len(net.Inputs) > MaxNodes {
				return nil, fmt.Errorf("%w: more than %d inputs", ErrTooLarge, MaxNodes)
			}
		case ".outputs":
			flush()
			net.Outputs = append(net.Outputs, fields[1:]...)
			if len(net.Outputs) > MaxNodes {
				return nil, fmt.Errorf("%w: more than %d outputs", ErrTooLarge, MaxNodes)
			}
		case ".names":
			flush()
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names with no signals")
			}
			if len(net.Nodes) >= MaxNodes {
				return nil, fmt.Errorf("%w: more than %d .names nodes", ErrTooLarge, MaxNodes)
			}
			cur = &Node{
				Inputs: fields[1 : len(fields)-1],
				Output: fields[len(fields)-1],
			}
		case ".end":
			flush()
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: unsupported construct %s (combinational subset only)", fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Ignore unknown dot-directives (e.g. .default_input_arrival).
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: cover row outside .names: %q", line)
			}
			var pat string
			var val byte
			switch len(fields) {
			case 1:
				// Constant node: single output column.
				if len(cur.Inputs) != 0 {
					return nil, fmt.Errorf("blif: bad cover row %q", line)
				}
				pat, val = "", fields[0][0]
			case 2:
				pat, val = fields[0], fields[1][0]
			default:
				return nil, fmt.Errorf("blif: bad cover row %q", line)
			}
			if len(pat) != len(cur.Inputs) {
				return nil, fmt.Errorf("blif: pattern %q arity mismatch for %s", pat, cur.Output)
			}
			if val != '0' && val != '1' {
				return nil, fmt.Errorf("blif: bad output value in %q", line)
			}
			cur.Cover = append(cur.Cover, Row{Pattern: pat, Value: val})
		}
	}
	flush()
	if len(net.Inputs) == 0 && len(net.Nodes) == 0 {
		return nil, fmt.Errorf("blif: empty network")
	}
	return net, nil
}

// Write emits the network in BLIF form.
func (n *Network) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := n.Name
	if name == "" {
		name = "top"
	}
	fmt.Fprintf(bw, ".model %s\n", name)
	writeSignalList(bw, ".inputs", n.Inputs)
	writeSignalList(bw, ".outputs", n.Outputs)
	for _, node := range n.Nodes {
		fmt.Fprintf(bw, ".names %s %s\n", strings.Join(node.Inputs, " "), node.Output)
		for _, row := range node.Cover {
			if len(node.Inputs) == 0 {
				fmt.Fprintf(bw, "%c\n", row.Value)
			} else {
				fmt.Fprintf(bw, "%s %c\n", row.Pattern, row.Value)
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeSignalList(w io.Writer, directive string, names []string) {
	const perLine = 10
	for i := 0; i < len(names); i += perLine {
		end := min(i+perLine, len(names))
		cont := ""
		if end < len(names) {
			cont = " \\"
		}
		lead := directive
		if i > 0 {
			lead = strings.Repeat(" ", len(directive))
		}
		fmt.Fprintf(w, "%s %s%s\n", lead, strings.Join(names[i:end], " "), cont)
	}
	if len(names) == 0 {
		fmt.Fprintf(w, "%s\n", directive)
	}
}
