package blif

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
	"repro/internal/sim"
)

const sampleBLIF = `
# a full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b t1
10 1
01 1
.names t1 cin sum
10 1
01 1
.names a b t2
11 1
.names t1 cin t3
11 1
.names t2 t3 cout
1- 1
-1 1
.end
`

func TestReadSample(t *testing.T) {
	net, err := Read(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "fa" || len(net.Inputs) != 3 || len(net.Outputs) != 2 || len(net.Nodes) != 5 {
		t.Fatalf("parsed shape wrong: %+v", net)
	}
	g, err := net.ToAIG()
	if err != nil {
		t.Fatal(err)
	}
	// Verify full-adder behaviour exhaustively.
	p := sim.Exhaustive(3)
	v := sim.Simulate(g, p)
	for m := 0; m < 8; m++ {
		total := m&1 + m>>1&1 + m>>2&1
		if v.LitBit(g.PO(0), m) != (total&1 == 1) {
			t.Fatalf("sum(%03b) wrong", m)
		}
		if v.LitBit(g.PO(1), m) != (total >= 2) {
			t.Fatalf("cout(%03b) wrong", m)
		}
	}
}

func TestReadOffsetCover(t *testing.T) {
	src := `
.model nor2
.inputs a b
.outputs y
.names a b y
00 1
.end
`
	net, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToAIG()
	if err != nil {
		t.Fatal(err)
	}
	v := sim.Simulate(g, sim.Exhaustive(2))
	for m := 0; m < 4; m++ {
		want := m == 0
		if v.LitBit(g.PO(0), m) != want {
			t.Fatalf("nor(%02b) wrong", m)
		}
	}

	// Same function via an off-set cover.
	src0 := strings.Replace(src, "00 1", "1- 0\n-1 0", 1)
	net0, err := Read(strings.NewReader(src0))
	if err != nil {
		t.Fatal(err)
	}
	g0, err := net0.ToAIG()
	if err != nil {
		t.Fatal(err)
	}
	v0 := sim.Simulate(g0, sim.Exhaustive(2))
	for m := 0; m < 4; m++ {
		if v0.LitBit(g0.PO(0), m) != (m == 0) {
			t.Fatalf("off-set nor(%02b) wrong", m)
		}
	}
}

func TestReadConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
`
	net, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToAIG()
	if err != nil {
		t.Fatal(err)
	}
	if g.PO(0) != aig.LitTrue || g.PO(1) != aig.LitFalse {
		t.Fatalf("constants wrong: %v %v", g.PO(0), g.PO(1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"latch":     ".model m\n.inputs a\n.outputs q\n.latch a q\n.end",
		"undefined": ".model m\n.inputs a\n.outputs y\n.names a x y\n11 1\n.end",
		"cycle":     ".model m\n.inputs a\n.outputs y\n.names y a y\n11 1\n.end",
		"mixed":     ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end",
		"arity":     ".model m\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end",
	}
	for name, src := range cases {
		net, err := Read(strings.NewReader(src))
		if err == nil {
			_, err = net.ToAIG()
		}
		if err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestContinuationLines(t *testing.T) {
	src := ".model m\n.inputs a b \\\nc d\n.outputs y\n.names a b c d y\n1111 1\n.end"
	net, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Inputs) != 4 {
		t.Fatalf("inputs = %v", net.Inputs)
	}
}

// TestRoundTrip checks AIG -> BLIF -> AIG functional equivalence on real
// generator circuits.
func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"rca32", "mtp8", "voter", "priority", "int2float"} {
		g := bench.Get(name)
		if g == nil {
			t.Fatalf("missing benchmark %s", name)
		}
		var buf bytes.Buffer
		if err := FromAIG(g).Write(&buf); err != nil {
			t.Fatal(err)
		}
		net, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := net.ToAIG()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumPIs() != g.NumPIs() || g2.NumPOs() != g.NumPOs() {
			t.Fatalf("%s: interface changed", name)
		}
		p := sim.Uniform(g.NumPIs(), 8, 11)
		v1 := sim.Simulate(g, p)
		v2 := sim.Simulate(g2, p)
		for i := 0; i < g.NumPOs(); i++ {
			a := v1.LitInto(g.PO(i), make([]uint64, p.Words))
			b := v2.LitInto(g2.PO(i), make([]uint64, p.Words))
			for w := range a {
				if a[w] != b[w] {
					t.Fatalf("%s: PO %d differs after round trip", name, i)
				}
			}
		}
	}
}

func TestWriteReadPONameCollision(t *testing.T) {
	// Two POs with the same requested name must be disambiguated.
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b), "s")
	g.AddPO(g.Or(a, b), "s")
	var buf bytes.Buffer
	if err := FromAIG(g).Write(&buf); err != nil {
		t.Fatal(err)
	}
	net, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if net.Outputs[0] == net.Outputs[1] {
		t.Fatalf("PO names not disambiguated: %v", net.Outputs)
	}
	if _, err := net.ToAIG(); err != nil {
		t.Fatal(err)
	}
}

func TestComplementedAndConstantPOs(t *testing.T) {
	g := aig.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO(g.And(a, b).Not(), "nand")
	g.AddPO(aig.LitTrue, "one")
	g.AddPO(aig.LitFalse, "zero")
	g.AddPO(a.Not(), "nota")
	var buf bytes.Buffer
	if err := FromAIG(g).Write(&buf); err != nil {
		t.Fatal(err)
	}
	net, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := net.ToAIG()
	if err != nil {
		t.Fatal(err)
	}
	p := sim.Exhaustive(2)
	v := sim.Simulate(g2, p)
	for m := 0; m < 4; m++ {
		if v.LitBit(g2.PO(0), m) != !(m == 3) {
			t.Fatalf("nand wrong at %d", m)
		}
		if !v.LitBit(g2.PO(1), m) || v.LitBit(g2.PO(2), m) {
			t.Fatalf("constants wrong at %d", m)
		}
		if v.LitBit(g2.PO(3), m) != (m&1 == 0) {
			t.Fatalf("nota wrong at %d", m)
		}
	}
}
