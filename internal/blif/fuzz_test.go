package blif

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzBLIFParse feeds arbitrary bytes to the BLIF reader. The hardened
// contract: Read never panics — it returns an error (wrapping ErrTooLarge
// for limit violations) or a well-formed network whose cover rows all match
// their node arity. Networks whose names contain no BLIF metacharacters must
// survive a write/read round trip with the same shape.
func FuzzBLIFParse(f *testing.F) {
	f.Add([]byte(".model top\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"))
	f.Add([]byte(".inputs a\n.outputs y\n.names a y\n0 1\n"))
	f.Add([]byte(".names y\n1\n.outputs y\n"))
	f.Add([]byte(".inputs a \\\nb\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n"))
	f.Add([]byte(".latch a b\n"))
	f.Add([]byte("# only a comment\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Read(bytes.NewReader(data))
		if err != nil {
			if net != nil {
				t.Fatal("Read returned a network alongside an error")
			}
			return
		}
		for _, node := range net.Nodes {
			for _, row := range node.Cover {
				if len(row.Pattern) != len(node.Inputs) {
					t.Fatalf("accepted cover row %q with arity %d for %d inputs",
						row.Pattern, len(row.Pattern), len(node.Inputs))
				}
				if row.Value != '0' && row.Value != '1' {
					t.Fatalf("accepted cover value %q", row.Value)
				}
			}
		}
		if !cleanNames(net) {
			return // writer metacharacters in names: round trip is out of contract
		}
		var buf bytes.Buffer
		if err := net.Write(&buf); err != nil {
			t.Fatalf("accepted network does not serialize: %v", err)
		}
		net2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(net2.Inputs) != len(net.Inputs) || len(net2.Outputs) != len(net.Outputs) ||
			len(net2.Nodes) != len(net.Nodes) {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				len(net.Inputs), len(net.Outputs), len(net.Nodes),
				len(net2.Inputs), len(net2.Outputs), len(net2.Nodes))
		}
	})
}

// cleanNames reports whether every signal name survives re-tokenization (no
// comment or continuation metacharacters, no leading dot).
func cleanNames(net *Network) bool {
	ok := func(s string) bool {
		return s != "" && !strings.ContainsAny(s, "#\\") && !strings.HasPrefix(s, ".")
	}
	if net.Name != "" && !ok(net.Name) {
		return false
	}
	for _, s := range net.Inputs {
		if !ok(s) {
			return false
		}
	}
	for _, s := range net.Outputs {
		if !ok(s) {
			return false
		}
	}
	for _, n := range net.Nodes {
		if !ok(n.Output) {
			return false
		}
		for _, s := range n.Inputs {
			if !ok(s) {
				return false
			}
		}
	}
	return true
}

// TestReadRejectsOverlongLine pins the typed limit error for a line beyond
// MaxLineLen, for both a physical line and a backslash-joined logical line.
func TestReadRejectsOverlongLine(t *testing.T) {
	physical := append([]byte(".inputs "), bytes.Repeat([]byte("a"), MaxLineLen+1)...)
	if _, err := Read(bytes.NewReader(physical)); err == nil || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("overlong physical line: error %v, want ErrTooLarge", err)
	}

	var joined bytes.Buffer
	joined.WriteString(".inputs")
	chunk := " " + strings.Repeat("b", 1<<16) + " \\"
	for joined.Len() < MaxLineLen+(1<<17) {
		joined.WriteString(chunk + "\n.inputs") // keep each physical line legal
	}
	_, err := Read(bytes.NewReader(joined.Bytes()))
	if err == nil {
		t.Fatal("overlong logical line accepted")
	}
}
