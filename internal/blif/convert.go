package blif

import (
	"fmt"

	"repro/internal/aig"
)

// ToAIG elaborates the network into a structurally hashed AIG. Node covers
// become AND-OR structures; both on-set and off-set covers are supported.
func (n *Network) ToAIG() (*aig.Graph, error) {
	g := aig.New()
	g.Name = n.Name

	lits := make(map[string]aig.Lit, len(n.Inputs)+len(n.Nodes))
	for _, in := range n.Inputs {
		if _, dup := lits[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		lits[in] = g.AddPI(in)
	}
	byOutput := make(map[string]*Node, len(n.Nodes))
	for i := range n.Nodes {
		node := &n.Nodes[i]
		if _, dup := byOutput[node.Output]; dup {
			return nil, fmt.Errorf("blif: signal %q defined twice", node.Output)
		}
		byOutput[node.Output] = node
	}

	building := make(map[string]bool)
	var resolve func(name string) (aig.Lit, error)
	resolve = func(name string) (aig.Lit, error) {
		if l, ok := lits[name]; ok {
			return l, nil
		}
		node, ok := byOutput[name]
		if !ok {
			return 0, fmt.Errorf("blif: undefined signal %q", name)
		}
		if building[name] {
			return 0, fmt.Errorf("blif: combinational cycle through %q", name)
		}
		building[name] = true
		defer delete(building, name)

		ins := make([]aig.Lit, len(node.Inputs))
		for i, in := range node.Inputs {
			l, err := resolve(in)
			if err != nil {
				return 0, err
			}
			ins[i] = l
		}
		l, err := coverLit(g, node, ins)
		if err != nil {
			return 0, err
		}
		lits[name] = l
		return l, nil
	}

	for _, out := range n.Outputs {
		l, err := resolve(out)
		if err != nil {
			return nil, err
		}
		g.AddPO(l, out)
	}
	return g, nil
}

// coverLit builds the function of a .names cover over the resolved inputs.
func coverLit(g *aig.Graph, node *Node, ins []aig.Lit) (aig.Lit, error) {
	if len(node.Cover) == 0 {
		return aig.LitFalse, nil
	}
	val := node.Cover[0].Value
	terms := make([]aig.Lit, 0, len(node.Cover))
	for _, row := range node.Cover {
		if row.Value != val {
			return 0, fmt.Errorf("blif: mixed on/off cover for %q", node.Output)
		}
		prod := make([]aig.Lit, 0, len(ins))
		for i, ch := range row.Pattern {
			switch ch {
			case '1':
				prod = append(prod, ins[i])
			case '0':
				prod = append(prod, ins[i].Not())
			case '-':
			default:
				return 0, fmt.Errorf("blif: bad pattern char %q in %q", ch, node.Output)
			}
		}
		terms = append(terms, g.AndN(prod...))
	}
	f := g.OrN(terms...)
	if val == '0' {
		f = f.Not() // off-set cover: rows describe when the output is 0
	}
	return f, nil
}

// FromAIG converts an AIG into a BLIF network: one two-input .names node
// per AND gate plus buffer/inverter nodes binding the primary outputs.
func FromAIG(g *aig.Graph) *Network {
	net := &Network{Name: g.Name}
	used := make(map[string]bool)
	unique := func(base string) string {
		if base != "" && !used[base] {
			used[base] = true
			return base
		}
		for i := 0; ; i++ {
			cand := fmt.Sprintf("%s_%d", base, i)
			if base == "" {
				cand = fmt.Sprintf("sig_%d", i)
			}
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}

	nodeName := make([]string, g.NumNodes())
	for i := 0; i < g.NumPIs(); i++ {
		pi := g.PI(i)
		name := g.PIName(i)
		if name == "" {
			name = fmt.Sprintf("pi%d", i)
		}
		name = unique(name)
		nodeName[pi] = name
		net.Inputs = append(net.Inputs, name)
	}
	for nd := aig.Node(1); int(nd) < g.NumNodes(); nd++ {
		if !g.IsAnd(nd) {
			continue
		}
		name := unique(fmt.Sprintf("n%d", nd))
		nodeName[nd] = name
		f0, f1 := g.Fanin0(nd), g.Fanin1(nd)
		pat := make([]byte, 2)
		for i, f := range []aig.Lit{f0, f1} {
			if f.IsCompl() {
				pat[i] = '0'
			} else {
				pat[i] = '1'
			}
		}
		in0, in1 := nodeName[f0.Node()], nodeName[f1.Node()]
		net.Nodes = append(net.Nodes, Node{
			Inputs: []string{in0, in1},
			Output: name,
			Cover:  []Row{{Pattern: string(pat), Value: '1'}},
		})
	}
	for i := 0; i < g.NumPOs(); i++ {
		po := g.PO(i)
		name := g.POName(i)
		if name == "" {
			name = fmt.Sprintf("po%d", i)
		}
		name = unique(name)
		net.Outputs = append(net.Outputs, name)
		switch {
		case po.Node() == 0:
			// Constant output.
			n := Node{Output: name}
			if po == aig.LitTrue {
				n.Cover = []Row{{Pattern: "", Value: '1'}}
			}
			net.Nodes = append(net.Nodes, n)
		default:
			driver := nodeName[po.Node()]
			pat := "1"
			if po.IsCompl() {
				pat = "0"
			}
			net.Nodes = append(net.Nodes, Node{
				Inputs: []string{driver},
				Output: name,
				Cover:  []Row{{Pattern: pat, Value: '1'}},
			})
		}
	}
	return net
}
